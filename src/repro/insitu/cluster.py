"""Multi-socket overprovisioned cluster — the paper's §III-A substrate.

The paper frames the study with hardware overprovisioning: more sockets
than the facility can power simultaneously, so a system-wide budget must
be divided.  It names the two reasons a *uniform* division wastes
capacity:

1. **non-uniform workload distribution** — sockets with little work
   finish early and strand their allocation while loaded sockets
   throttle;
2. **manufacturing variation** — "uniform power caps translate to
   variations in performance across otherwise identical processors"
   (Marathe et al.): the same cap yields different frequencies on
   different parts.

:class:`Cluster` models N sockets with seeded per-part efficiency
variation; :func:`uniform_caps` and :func:`demand_aware_caps` divide a
system budget the naive and the informed way.  The makespan gap between
them is the §III-A argument, quantified.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..machine.simulator import Processor, RunResult
from ..machine.spec import BROADWELL_E5_2695V4, MachineSpec
from ..workload import WorkProfile

__all__ = [
    "SocketRun",
    "ClusterResult",
    "Cluster",
    "uniform_caps",
    "demand_aware_caps",
    "governed_system_caps",
]


@dataclass(frozen=True)
class SocketRun:
    """One socket's outcome under its cap."""

    socket: int
    cap_w: float
    time_s: float
    power_w: float
    freq_ghz: float


@dataclass
class ClusterResult:
    strategy: str
    runs: list[SocketRun] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        """Distributed work: the slowest socket finishes the job."""
        return max(r.time_s for r in self.runs)

    @property
    def total_power_w(self) -> float:
        return sum(r.power_w for r in self.runs)

    @property
    def idle_ratio(self) -> float:
        """Mean fraction of the makespan sockets sit finished-and-idle
        (the paper's stranded capacity)."""
        m = self.makespan_s
        return float(np.mean([1.0 - r.time_s / m for r in self.runs])) if m > 0 else 0.0


class Cluster:
    """N sockets of one part with seeded manufacturing variation.

    ``variation`` is the relative sigma of the per-part dynamic-power
    efficiency (Marathe et al. report run-to-run part spreads of
    several percent at a fixed cap).  A less efficient part burns more
    Watts per unit work, so a uniform cap throttles it harder.
    """

    def __init__(
        self,
        n_sockets: int,
        *,
        spec: MachineSpec = BROADWELL_E5_2695V4,
        variation: float = 0.05,
        seed: int = 0,
    ):
        if n_sockets < 1:
            raise ValueError("need at least one socket")
        if not (0.0 <= variation < 0.5):
            raise ValueError("variation must be in [0, 0.5)")
        rng = np.random.default_rng(seed)
        factors = 1.0 + variation * rng.standard_normal(n_sockets)
        factors = np.clip(factors, 0.7, 1.3)
        self.spec = spec
        self.processors = [
            Processor(dataclasses.replace(spec, c_dyn=spec.c_dyn * float(f)))
            for f in factors
        ]
        self.efficiency_factors = factors

    @property
    def n_sockets(self) -> int:
        return len(self.processors)

    def run(self, workloads: list[WorkProfile], caps_w: list[float], strategy: str) -> ClusterResult:
        """Execute one workload per socket under per-socket caps."""
        if len(workloads) != self.n_sockets or len(caps_w) != self.n_sockets:
            raise ValueError("need one workload and one cap per socket")
        result = ClusterResult(strategy=strategy)
        for i, (proc, prof, cap) in enumerate(zip(self.processors, workloads, caps_w)):
            r: RunResult = proc.run(prof, cap)
            result.runs.append(
                SocketRun(
                    socket=i,
                    cap_w=cap,
                    time_s=r.time_s,
                    power_w=r.avg_power_w,
                    freq_ghz=r.effective_freq_ghz,
                )
            )
        return result


def uniform_caps(cluster: Cluster, workloads: list[WorkProfile], budget_w: float) -> ClusterResult:
    """The naive §III-A strategy: the budget divided evenly."""
    cap = cluster.processors[0].rapl.validate_cap(budget_w / cluster.n_sockets)
    return cluster.run(workloads, [cap] * cluster.n_sockets, "uniform")


def demand_aware_caps(
    cluster: Cluster,
    workloads: list[WorkProfile],
    budget_w: float,
    *,
    iterations: int = 12,
) -> ClusterResult:
    """Assign power where it is needed most (§III-A's better strategy).

    Iterative water-filling on predicted finish times: every round, move
    budget from the socket with the most slack to the one on the
    critical path, while the total allocation stays fixed.
    """
    n = cluster.n_sockets
    floor = cluster.spec.rapl_floor_watts
    tdp = cluster.spec.tdp_watts
    if budget_w < n * floor:
        raise ValueError(f"budget below the {n}-socket floor ({n * floor} W)")
    caps = np.full(n, min(budget_w / n, tdp))

    def times(c: np.ndarray) -> np.ndarray:
        return np.array(
            [p.run(w, float(cap)).time_s for p, w, cap in zip(cluster.processors, workloads, c)]
        )

    step = max((tdp - floor) / 8.0, 1.0)
    for _ in range(iterations):
        t = times(caps)
        slow = int(np.argmax(t))
        # Donor: the socket with the most idle slack that can still give.
        candidates = [i for i in range(n) if i != slow and caps[i] - step >= floor]
        if not candidates or caps[slow] + step > tdp:
            break
        donor = min(candidates, key=lambda i: t[i])
        if t[donor] >= t[slow]:
            break
        caps[donor] -= step
        caps[slow] += step
    return cluster.run(workloads, [float(c) for c in caps], "demand-aware")


def governed_system_caps(
    cluster: Cluster,
    workloads: list[WorkProfile],
    budget_w: float,
    governor,
    trace,
    *,
    t_s: float = 0.0,
    iterations: int = 12,
) -> ClusterResult:
    """Demand-aware division of a signal-governed system budget.

    The facility-level generalization of §III-A: the overprovisioned
    system budget is itself time-varying (price/CO₂-driven curtailment).
    Samples ``trace`` at ``t_s``, scales the nominal budget by the
    governor's capacity fraction — never below the N-socket RAPL floor —
    and water-fills the effective budget across sockets.
    """
    fraction = governor.limit(trace.value_at(t_s))
    floor = cluster.n_sockets * cluster.spec.rapl_floor_watts
    if budget_w < floor:
        raise ValueError(f"budget below the {cluster.n_sockets}-socket floor ({floor} W)")
    effective = max(floor, float(budget_w) * fraction)
    result = demand_aware_caps(cluster, workloads, effective, iterations=iterations)
    result.strategy = f"governed[{governor.describe()}]:{result.strategy}"
    return result
