"""Tightly-coupled in-situ driver: simulation and visualization alternate
on the same (simulated) socket, as in the study ("the simulation and
visualization alternate while using the same resources").

Each cycle: ``steps_per_cycle`` hydro steps, then every pipeline runs
against the fresh dataset.  Both phases execute on the simulated
processor under their own power caps, producing the per-phase times and
energies the power-budget runtime optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cloverleaf.driver import CloverLeaf
from ..machine.simulator import Processor, RunResult
from .pipeline import Pipeline

__all__ = ["CycleRecord", "InSituRun", "InSituDriver"]


@dataclass(frozen=True)
class CycleRecord:
    """Timing/energy of one sim+viz cycle on the simulated socket."""

    cycle: int
    sim_time_s: float
    sim_energy_j: float
    viz_time_s: float
    viz_energy_j: float

    @property
    def time_s(self) -> float:
        return self.sim_time_s + self.viz_time_s

    @property
    def energy_j(self) -> float:
        return self.sim_energy_j + self.viz_energy_j

    @property
    def viz_fraction(self) -> float:
        """Share of the cycle spent visualizing (the paper's 10–20%)."""
        t = self.time_s
        return self.viz_time_s / t if t > 0 else 0.0


@dataclass
class InSituRun:
    """Aggregate of a coupled run."""

    cycles: list[CycleRecord] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(c.time_s for c in self.cycles)

    @property
    def total_energy_j(self) -> float:
        return sum(c.energy_j for c in self.cycles)

    @property
    def avg_power_w(self) -> float:
        t = self.total_time_s
        return self.total_energy_j / t if t > 0 else 0.0

    @property
    def viz_fraction(self) -> float:
        t = self.total_time_s
        return sum(c.viz_time_s for c in self.cycles) / t if t > 0 else 0.0


class InSituDriver:
    """Run CloverLeaf with visualization pipelines under per-phase caps."""

    def __init__(
        self,
        simulation: CloverLeaf,
        pipelines: list[Pipeline],
        *,
        processor: Processor | None = None,
        steps_per_cycle: int = 10,
    ):
        if steps_per_cycle < 1:
            raise ValueError("steps_per_cycle must be positive")
        if not pipelines:
            raise ValueError("need at least one pipeline")
        self.sim = simulation
        self.pipelines = pipelines
        self.proc = processor or Processor()
        self.steps_per_cycle = int(steps_per_cycle)

    def run(
        self,
        n_cycles: int,
        *,
        sim_cap_w: float | None = None,
        viz_cap_w: float | None = None,
    ) -> InSituRun:
        """Execute ``n_cycles`` coupled cycles.

        The hydro steps and filters run for real; the simulated socket
        prices each phase under its cap.
        """
        run = InSituRun()
        for cycle in range(n_cycles):
            self.sim.step(self.steps_per_cycle)
            sim_result: RunResult = self.proc.run(
                self.sim.profile(self.steps_per_cycle), sim_cap_w
            )

            ds = self.sim.dataset()
            viz_time = viz_energy = 0.0
            for pipe in self.pipelines:
                res = pipe.execute(ds)
                priced = self.proc.run(res.profile, viz_cap_w)
                viz_time += priced.time_s
                viz_energy += priced.energy_j

            run.cycles.append(
                CycleRecord(
                    cycle=cycle,
                    sim_time_s=sim_result.time_s,
                    sim_energy_j=sim_result.energy_j,
                    viz_time_s=viz_time,
                    viz_energy_j=viz_energy,
                )
            )
        return run
