"""repro — reproduction of "Power and Performance Tradeoffs for
Visualization Algorithms" (Labasan, Larsen, Childs, Rountree; IPDPS 2019).

The package is layered bottom-up:

* :mod:`repro.workload` — hardware-independent work descriptions.
* :mod:`repro.data` — grids, fields, meshes, marching-cubes tables.
* :mod:`repro.viz` — the eight visualization algorithms (VTK-m substitute).
* :mod:`repro.machine` — simulated Broadwell socket with RAPL power capping.
* :mod:`repro.cloverleaf` — hydrodynamics proxy (data source).
* :mod:`repro.insitu` — tightly-coupled sim+viz and the power-budget runtime.
* :mod:`repro.core` — the study itself: sweeps, metrics, classification,
  the parallel/resumable sweep engine, its result store, and the
  invariant validator behind the quarantine gate.
* :mod:`repro.faults` — deterministic fault injection (chaos layer) for
  the machine, engine, and store (``repro chaos`` / ``repro doctor``).
* :mod:`repro.lint` — contract-aware static analysis (``repro lint``),
  the zero-violation gate over the conventions listed above.
* :mod:`repro.harness` — per-table/figure experiment drivers.
* :mod:`repro.api` — the stable facade; start here
  (``repro.run_study`` / ``repro.load_result`` / ``repro.classify_study``).
"""

__version__ = "1.1.0"

import os as _os

if _os.environ.get("REPRO_SANITIZE") == "1":
    # Patch the threading lock factories *before* any repro module is
    # imported, so every lock the package creates is tracked.
    from .lint.sanitizer import install as _sanitizer_install

    _sanitizer_install()

from .workload import AccessPattern, InstructionMix, WorkProfile, WorkSegment
from . import api
from .api import (
    AdviseRequest,
    AdviseResponse,
    StudyRequest,
    advise,
    classify_study,
    load_result,
    regenerate_tables,
    run_study,
)

__all__ = [
    "__version__",
    "AccessPattern",
    "InstructionMix",
    "WorkProfile",
    "WorkSegment",
    "api",
    "run_study",
    "advise",
    "StudyRequest",
    "AdviseRequest",
    "AdviseResponse",
    "load_result",
    "classify_study",
    "regenerate_tables",
]
