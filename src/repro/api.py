"""Stable facade over the study machinery.

Everything a downstream consumer needs, in a handful of calls::

    import repro

    result = repro.run_study("phase3", workers=8, store="sweep.jsonl")
    repro.api.regenerate_tables(csv_dir="results/")
    later = repro.load_result("sweep.jsonl")
    classes = repro.classify_study(later)

    report = repro.api.doctor("sweep.jsonl")          # invariant audit
    gate = repro.api.lint()                           # static-analysis gate
    chaos = repro.api.run_chaos("phase1", plan="default",
                                store="chaos.jsonl")  # fault-injection drill

The facade hides the moving parts — :class:`~repro.core.engine.SweepEngine`,
:class:`~repro.core.store.ResultStore`,
:class:`~repro.harness.TableHarness` — behind a small surface that is
kept stable across refactors.  Study phases can be named by string
(``"phase1"``/``"phase2"``/``"phase3"``/``"table1"``/``"table2"``/
``"table3"``) or passed as explicit
:class:`~repro.core.study.StudyConfig` grids.  Named phases respect the
``REPRO_MAX_SIZE`` environment cap; explicit configs are taken verbatim.
"""

from __future__ import annotations

import json
import threading
import warnings
from dataclasses import dataclass, fields
from pathlib import Path

from .core.advisor import PowerAdvisor
from .core.classify import Classification, classify_result
from .core.engine import SweepEngine
from .core.metrics import SLOWDOWN_THRESHOLD
from .core.pricing import LedgerCache
from .core.profiles import ProfileCache
from .core.runner import DEFAULT_VIZ_CYCLES, RunPoint, StudyResult
from .core.store import ResultStore
from .core.study import (
    ALGORITHM_NAMES,
    StudyConfig,
    phase1_config,
    phase2_config,
    phase3_config,
)
from .core.validate import ValidationReport, validate_store
from .faults import (
    GOVERNOR_PLANS,
    PLANS,
    SERVICE_PLANS,
    ChaosReport,
    FaultPlan,
    GovernorChaosReport,
    GovernorFaultPlan,
    ServiceChaosReport,
    get_governor_plan,
    get_plan,
    get_service_plan,
)
from .faults import run_chaos as _run_chaos
from .faults import run_governor_chaos as _run_governor_chaos
from .faults import run_service_chaos as _run_service_chaos
from .harness.experiments import DEFAULT_CACHE_PATH, TableHarness, effective_sizes
from .lint import LintReport
from .lint import lint_paths as _lint_paths
from .machine.presets import ALL_PRESETS
from .serve import DEFAULT_SPOOL, SubmitReceipt, SweepService

__all__ = [
    "StudyRequest",
    "AdviseRequest",
    "AdviseResponse",
    "advise",
    "advisor",
    "run_study",
    "load_result",
    "classify_study",
    "regenerate_tables",
    "resolve_config",
    "sweep_engine",
    "harness",
    "run_chaos",
    "run_service_chaos",
    "run_governor_chaos",
    "doctor",
    "lint",
    "PLANS",
    "get_plan",
    "SERVICE_PLANS",
    "get_service_plan",
    "GOVERNOR_PLANS",
    "get_governor_plan",
    "sweep_service",
    "submit_study",
    "study_status",
    "cancel_study",
    "service_report",
]

#: Phase names accepted by :func:`resolve_config` / :func:`run_study`.
PHASE_NAMES = ("phase1", "phase2", "phase3", "table1", "table2", "table3")


def resolve_config(config: StudyConfig | str) -> StudyConfig:
    """Turn a phase name (or pass an explicit grid through) into a config.

    Named phases get their sizes capped by ``REPRO_MAX_SIZE``; an
    explicit :class:`StudyConfig` is returned unchanged.
    """
    if isinstance(config, StudyConfig):
        return config
    name = str(config).lower()
    if name in ("phase1", "table1"):
        base = phase1_config()
    elif name in ("phase2", "table2"):
        base = phase2_config()
    elif name == "phase3":
        base = phase3_config()
    elif name == "table3":
        base = StudyConfig(name="table3", algorithms=ALGORITHM_NAMES, sizes=(256,))
    else:
        raise ValueError(f"unknown study phase {config!r}; expected one of {PHASE_NAMES}")
    return StudyConfig(
        name=base.name,
        algorithms=base.algorithms,
        sizes=effective_sizes(base.sizes),
        caps_w=base.caps_w,
    )


def sweep_engine(
    *,
    workers: int | None = None,
    store: ResultStore | str | Path | None = None,
    cache: str | Path | None = None,
    spec=None,
    dataset_kind: str = "blobs",
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    seed: int = 7,
    timeout_s: float | None = None,
    max_retries: int = 2,
    progress=None,
    trace=None,
    samples=None,
    sample_interval_s: float = 0.1,
) -> SweepEngine:
    """A configured :class:`SweepEngine` (the facade's construction point).

    ``trace`` (a :class:`~repro.obs.trace.Tracer` or a path) records
    spans/events; ``samples`` (``True`` or a path) streams 100 ms power
    samples per run point (see :mod:`repro.obs`).
    """
    return SweepEngine(
        spec,
        dataset_kind=dataset_kind,
        n_cycles=n_cycles,
        seed=seed,
        workers=workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
        store=store,
        profile_cache=ProfileCache(cache),
        progress=progress,
        trace=trace,
        samples=samples,
        sample_interval_s=sample_interval_s,
    )


@dataclass(frozen=True)
class StudyRequest:
    """Everything :func:`run_study` needs, as one typed value.

    The facade's kwarg list grew one telemetry/robustness feature at a
    time; this request object consolidates it so call sites can build,
    store, and pass sweep configurations as data.  Field semantics are
    unchanged from the historical keywords (see :func:`sweep_engine`).
    """

    config: StudyConfig | str = "phase2"
    workers: int | None = 0
    store: ResultStore | str | Path | None = None
    resume: bool = True
    cache: str | Path | None = None
    spec: object = None
    dataset_kind: str = "blobs"
    n_cycles: int = DEFAULT_VIZ_CYCLES
    seed: int = 7
    progress: object = None
    trace: object = None
    samples: object = None
    sample_interval_s: float = 0.1


_STUDY_REQUEST_KEYS = frozenset(
    f.name for f in fields(StudyRequest) if f.name != "config"
)


def run_study(
    config: StudyRequest | StudyConfig | str = "phase2", **kwargs
) -> StudyResult:
    """Run a study sweep and return its points.

    The typed form takes a single :class:`StudyRequest`::

        repro.run_study(StudyRequest(config="phase3", workers=8,
                                     store="sweep.jsonl"))

    ``workers`` > 1 fans profile executions out across processes;
    ``store`` makes the sweep resumable (see
    :mod:`repro.core.engine`).  The default is serial and in-memory —
    identical output, no side effects.  ``trace``/``samples`` switch on
    the telemetry layer (:mod:`repro.obs`): spans + events to a trace
    file, and a per-point power/frequency sample stream next to the
    store.

    .. deprecated:: 1.2
        The grown keyword list (``run_study("phase3", workers=8, ...)``)
        still works but emits :class:`DeprecationWarning`; pass a
        :class:`StudyRequest` instead.
    """
    if isinstance(config, StudyRequest):
        if kwargs:
            raise TypeError(
                "run_study(StudyRequest, ...) takes no extra keywords; "
                f"got {sorted(kwargs)}"
            )
        request = config
    else:
        unknown = set(kwargs) - _STUDY_REQUEST_KEYS
        if unknown:
            raise TypeError(
                f"run_study() got unexpected keyword argument(s) {sorted(unknown)}"
            )
        if kwargs:
            warnings.warn(
                "run_study(config, workers=..., store=..., ...) keywords are "
                "deprecated; pass a repro.api.StudyRequest instead",
                DeprecationWarning,
                stacklevel=2,
            )
        request = StudyRequest(config=config, **kwargs)
    engine = sweep_engine(
        workers=request.workers,
        store=request.store,
        cache=request.cache,
        spec=request.spec,
        dataset_kind=request.dataset_kind,
        n_cycles=request.n_cycles,
        seed=request.seed,
        progress=request.progress,
        trace=request.trace,
        samples=request.samples,
        sample_interval_s=request.sample_interval_s,
    )
    return engine.run(resolve_config(request.config), resume=request.resume)


# --------------------------------------------------------------------- advise
@dataclass(frozen=True)
class AdviseRequest:
    """One pricing query: algorithm + size, optionally a cap to price.

    ``cap_w=None`` prices the *recommended* (deepest tolerable) cap;
    ``machine`` names a preset from
    :data:`repro.machine.presets.ALL_PRESETS`.
    """

    algorithm: str
    size: int
    cap_w: float | None = None
    tolerance: float = SLOWDOWN_THRESHOLD
    machine: str = "broadwell"

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "size": self.size,
            "cap_w": self.cap_w,
            "tolerance": self.tolerance,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AdviseRequest":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown advise request field(s) {sorted(unknown)}")
        if "algorithm" not in d or "size" not in d:
            raise ValueError("advise request needs 'algorithm' and 'size'")
        out = dict(d)
        out["algorithm"] = str(out["algorithm"])
        out["size"] = int(out["size"])
        if out.get("cap_w") is not None:
            out["cap_w"] = float(out["cap_w"])
        if "tolerance" in out:
            out["tolerance"] = float(out["tolerance"])
        if "machine" in out:
            out["machine"] = str(out["machine"])
        return cls(**out)


@dataclass(frozen=True)
class AdviseResponse:
    """A pricing query's answer: the priced point plus the recommendation."""

    algorithm: str
    size: int
    machine: str
    cap_w: float                 # the cap the point below is priced at
    recommended_cap_w: float     # deepest cap within the slowdown tolerance
    predicted_time_s: float
    predicted_energy_j: float
    predicted_power_w: float
    predicted_tratio: float
    power_saved_w: float         # headroom released vs. the TDP baseline
    tolerance: float
    cache_hit: bool              # False when this query executed the algorithm
    latency_s: float
    point: RunPoint              # full-fidelity measurements at cap_w

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "size": self.size,
            "machine": self.machine,
            "cap_w": self.cap_w,
            "recommended_cap_w": self.recommended_cap_w,
            "predicted_time_s": self.predicted_time_s,
            "predicted_energy_j": self.predicted_energy_j,
            "predicted_power_w": self.predicted_power_w,
            "predicted_tratio": self.predicted_tratio,
            "power_saved_w": self.power_saved_w,
            "tolerance": self.tolerance,
            "cache_hit": self.cache_hit,
            "latency_s": self.latency_s,
            "point": self.point.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AdviseResponse":
        return cls(
            algorithm=str(d["algorithm"]),
            size=int(d["size"]),
            machine=str(d["machine"]),
            cap_w=float(d["cap_w"]),
            recommended_cap_w=float(d["recommended_cap_w"]),
            predicted_time_s=float(d["predicted_time_s"]),
            predicted_energy_j=float(d["predicted_energy_j"]),
            predicted_power_w=float(d["predicted_power_w"]),
            predicted_tratio=float(d["predicted_tratio"]),
            power_saved_w=float(d["power_saved_w"]),
            tolerance=float(d["tolerance"]),
            cache_hit=bool(d["cache_hit"]),
            latency_s=float(d["latency_s"]),
            point=RunPoint.from_dict(d["point"]),
        )


def advisor(
    *,
    machine: str = "broadwell",
    cache: LedgerCache | str | Path | None = None,
    dataset_kind: str = "blobs",
    seed: int = 7,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    tolerance: float = SLOWDOWN_THRESHOLD,
) -> PowerAdvisor:
    """A configured :class:`~repro.core.advisor.PowerAdvisor`.

    The facade's construction point for the advise service: ``machine``
    names a preset, ``cache`` a content-addressed ledger cache (path or
    instance; None keeps it in memory).
    """
    if machine not in ALL_PRESETS:
        raise ValueError(
            f"unknown machine preset {machine!r}; expected one of {sorted(ALL_PRESETS)}"
        )
    return PowerAdvisor(
        ALL_PRESETS[machine],
        cache=cache,
        dataset_kind=dataset_kind,
        seed=seed,
        n_cycles=n_cycles,
        tolerance=tolerance,
    )


#: Process-wide advisors for the zero-setup ``api.advise()`` path, one
#: per (machine, cache) pair so repeat queries stay warm.
_ADVISORS: dict[tuple[str, str | None], PowerAdvisor] = {}
_ADVISORS_LOCK = threading.Lock()


def _shared_advisor(machine: str, cache: str | Path | None) -> PowerAdvisor:
    key = (machine, str(cache) if cache is not None else None)
    with _ADVISORS_LOCK:
        adv = _ADVISORS.get(key)
        if adv is None:
            adv = advisor(machine=machine, cache=cache)
            _ADVISORS[key] = adv
        return adv


def advise(
    request: AdviseRequest | dict | None = None,
    *,
    advisor: PowerAdvisor | None = None,
    cache: str | Path | None = None,
    **kwargs,
) -> AdviseResponse:
    """Answer one pricing query: "what does X at S cost under cap C?"

    Typed form::

        repro.api.advise(AdviseRequest(algorithm="contour", size=128))

    Keyword convenience (equivalent, not deprecated)::

        repro.api.advise(algorithm="contour", size=128, cap_w=60.0)

    With no explicit ``advisor``, a process-wide advisor per (machine,
    cache) pair serves the query, so repeated calls stay warm.  The
    first query for an (algorithm, size) executes the real algorithm
    once; every later one reprices its cached ledger closed-form.
    """
    if request is None:
        request = AdviseRequest(**kwargs)
    elif kwargs:
        raise TypeError(
            f"advise(request, ...) takes no extra keywords; got {sorted(kwargs)}"
        )
    if isinstance(request, dict):
        request = AdviseRequest.from_dict(request)
    if request.machine not in ALL_PRESETS:
        raise ValueError(
            f"unknown machine preset {request.machine!r}; "
            f"expected one of {sorted(ALL_PRESETS)}"
        )
    adv = advisor if advisor is not None else _shared_advisor(request.machine, cache)
    advice = adv.advise(
        request.algorithm,
        request.size,
        cap_w=request.cap_w,
        tolerance=request.tolerance,
    )
    point = advice.point
    rec = advice.recommendation
    return AdviseResponse(
        algorithm=request.algorithm,
        size=int(request.size),
        machine=request.machine,
        cap_w=point.cap_w,
        recommended_cap_w=rec.cap_w,
        predicted_time_s=point.time_s,
        predicted_energy_j=point.energy_j,
        predicted_power_w=point.power_w,
        predicted_tratio=point.tratio,
        power_saved_w=rec.power_saved_w,
        tolerance=request.tolerance,
        cache_hit=advice.cache_hit,
        latency_s=advice.latency_s,
        point=point,
    )


def run_chaos(
    config: StudyConfig | str = "phase1",
    *,
    plan: FaultPlan | str = "default",
    store: str | Path,
    workers: int | None = 0,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    seed: int = 7,
    chaos_seed: int | None = None,
    spec=None,
    progress=None,
    trace=None,
) -> ChaosReport:
    """Run a sweep under a named (or explicit) fault plan; report survival.

    The contract checked: every point surviving into the store is
    bitwise identical to a fault-free run, unrecoverable points land in
    the quarantine sidecar with reasons, and a torn store tail is
    recovered on resume.  ``chaos_seed`` re-seeds the plan for a
    different (still deterministic) fault schedule.
    """
    resolved_plan = get_plan(plan) if isinstance(plan, str) else plan
    if chaos_seed is not None:
        resolved_plan = resolved_plan.with_seed(chaos_seed)
    return _run_chaos(
        resolve_config(config),
        resolved_plan,
        store=store,
        workers=workers,
        n_cycles=n_cycles,
        seed=seed,
        spec=spec,
        progress=progress,
        trace=trace,
    )


# ----------------------------------------------------------------- service
def sweep_service(
    spool: str | Path = DEFAULT_SPOOL,
    *,
    workers: int = 2,
    lease_s: float = 30.0,
    queue_limit: int = 16,
    breaker_threshold: int = 3,
    trace=None,
    **kwargs,
) -> SweepService:
    """A configured :class:`~repro.serve.service.SweepService` over a spool.

    The facade's construction point for the supervised sweep service:
    the spool directory holds the WAL (the durable job queue), one
    fingerprinted result store per job, and the shared ledger caches.
    Clients and the daemon both work through this object — the WAL is
    the IPC.  See ``docs/robustness.md`` ("service-layer failure modes").
    """
    return SweepService(
        spool,
        workers=workers,
        lease_s=lease_s,
        queue_limit=queue_limit,
        breaker_threshold=breaker_threshold,
        trace=trace,
        **kwargs,
    )


def submit_study(
    config: StudyConfig | str = "phase1",
    *,
    spool: str | Path = DEFAULT_SPOOL,
    dataset_kind: str = "blobs",
    seed: int = 7,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    max_retries: int = 2,
    service: SweepService | None = None,
) -> SubmitReceipt:
    """Durably enqueue one study for the sweep service (or be shed).

    Phase names are resolved here — ``REPRO_MAX_SIZE`` applies at
    submission, and the WAL records the exact grid.  The returned
    :class:`~repro.serve.service.SubmitReceipt` says whether the job was
    accepted (``queued``) or shed (``queue-full`` when the queue is at
    its limit, ``degraded`` when the circuit breaker is open).  An
    accepted receipt is durable: the submit record is fsynced before
    this returns, so the job survives any daemon crash.
    """
    svc = service if service is not None else sweep_service(spool)
    return svc.submit(
        resolve_config(config),
        dataset_kind=dataset_kind,
        seed=seed,
        n_cycles=n_cycles,
        max_retries=max_retries,
    )


def study_status(
    job_id: str,
    *,
    spool: str | Path = DEFAULT_SPOOL,
    service: SweepService | None = None,
) -> dict:
    """One job's current state, derived by replaying the spool's WAL."""
    svc = service if service is not None else sweep_service(spool)
    return svc.status(job_id)


def cancel_study(
    job_id: str,
    *,
    spool: str | Path = DEFAULT_SPOOL,
    service: SweepService | None = None,
) -> dict:
    """Cooperatively cancel a pending/running job; returns its snapshot."""
    svc = service if service is not None else sweep_service(spool)
    return svc.cancel(job_id)


def service_report(
    *,
    spool: str | Path = DEFAULT_SPOOL,
    service: SweepService | None = None,
) -> dict:
    """Service-wide snapshot: queue counts, breaker state, per-job status."""
    svc = service if service is not None else sweep_service(spool)
    return svc.report()


def run_service_chaos(
    config: StudyConfig | str = "phase1",
    *,
    plan: str = "default",
    spool: str | Path,
    n_jobs: int = 2,
    workers: int = 2,
    lease_s: float = 1.0,
    n_cycles: int = 2,
    seed: int = 7,
    chaos_seed: int | None = None,
    trace=None,
) -> ServiceChaosReport:
    """Torture the sweep service under a named plan; report the contract.

    Submits ``n_jobs`` studies, drains a daemon generation under
    injected worker crashes / heartbeat stalls / duplicate deliveries,
    optionally tears the WAL's last record, then replays into a fresh
    generation.  ``report.survived`` asserts: no accepted job lost or
    failed, duplicates ignored rather than double-counted, replay
    convergent, and every store bitwise identical to an uninterrupted
    run.
    """
    return _run_service_chaos(
        resolve_config(config),
        plan,
        spool=spool,
        n_jobs=n_jobs,
        workers=workers,
        lease_s=lease_s,
        n_cycles=n_cycles,
        seed=seed,
        chaos_seed=chaos_seed,
        trace=trace,
    )


def run_governor_chaos(
    *,
    plan: GovernorFaultPlan | str = "default",
    governor: str = "step:100=0.7:200=0.5",
    control: str = "power",
    spec=None,
    n_epochs: int = 10,
) -> GovernorChaosReport:
    """Drill a governed power policy's signal feed; report the contract.

    Runs the reference pass plus the three signal-feed drills (sample
    dropout, step discontinuity, trace truncation) for one
    governor × control-method policy and checks every epoch against the
    piecewise invariants.  ``report.survived`` asserts: zero invariant
    violations in every drill, every decision inside the governor's and
    RAPL's declared ranges, and a bitwise-identical clean replay.
    """
    resolved = get_governor_plan(plan) if isinstance(plan, str) else plan
    return _run_governor_chaos(
        resolved,
        governor=governor,
        control=control,
        spec=spec,
        n_epochs=n_epochs,
    )


def doctor(
    path: str | Path,
    *,
    spec=None,
    quarantine: bool = False,
) -> ValidationReport:
    """Validate an existing store file against the physical invariants.

    With ``quarantine=True`` violating points are moved to the store's
    ``*.quarantine.jsonl`` sidecar so the main file validates clean.
    """
    return validate_store(path, spec, quarantine=quarantine)


def lint(
    paths=None,
    *,
    baseline: str | Path | None = None,
    update_baseline: bool = False,
    rules=None,
    only=None,
) -> LintReport:
    """Run the contract-aware static-analysis gate (``repro lint``).

    Lints the given files/directories (default: the installed ``repro``
    package) against the RPR rule set and returns a
    :class:`~repro.lint.runner.LintReport`; ``report.ok`` is the gate.
    ``baseline`` grandfather-lists known findings;
    ``update_baseline=True`` rewrites it from the current findings.
    ``only`` narrows *reporting* to the given files while the whole
    target set is still analysed (``repro lint --changed``).
    """
    return _lint_paths(
        paths,
        baseline_path=baseline,
        update_baseline=update_baseline,
        rules=rules,
        only=only,
    )


def load_result(path: str | Path) -> StudyResult:
    """Load a :class:`StudyResult` from disk.

    Accepts both serialized results (``StudyResult.to_jsonl``) and
    sweep-store files (``--store`` output) — the header line says which.
    """
    p = Path(path)
    with open(p) as fh:
        first = fh.readline()
    header = json.loads(first) if first.strip() else {}
    fmt = header.get("format")
    if fmt == ResultStore.FORMAT:
        return ResultStore(p).load_result()
    return StudyResult.from_jsonl(p)


def classify_study(
    result: StudyResult,
    *,
    size: int | None = None,
    sensitive_cap_w: float = 70.0,
) -> dict[str, Classification]:
    """Classify every algorithm in a result (power opportunity/sensitive).

    With ``size=None`` a single-size result uses its size and a
    multi-size result uses its largest (the paper classifies at the
    biggest grid, where the signal is strongest).
    """
    if size is None:
        sizes = result.sizes
        size = sizes[-1] if sizes else None
    return classify_result(result, size=size, sensitive_cap_w=sensitive_cap_w)


def harness(
    cache: str | Path | None = DEFAULT_CACHE_PATH,
    *,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    seed: int = 7,
    workers: int = 0,
    store: ResultStore | str | Path | None = None,
    progress=None,
) -> TableHarness:
    """A configured table/figure harness (replaces ``ExperimentHarness(...)``)."""
    return TableHarness(
        cache, n_cycles=n_cycles, seed=seed, workers=workers, store=store, progress=progress
    )


def regenerate_tables(
    tables: tuple[str, ...] = ("table1", "table2", "table3"),
    *,
    cache: str | Path | None = DEFAULT_CACHE_PATH,
    csv_dir: str | Path | None = None,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    workers: int = 0,
) -> dict[str, StudyResult]:
    """Recompute the paper's tables; optionally emit CSV artifacts."""
    from .harness.emit import result_to_csv

    h = harness(cache, n_cycles=n_cycles, workers=workers)
    runners = {"table1": h.table1, "table2": h.table2, "table3": h.table3, "phase3": h.phase3}
    unknown = set(tables) - set(runners)
    if unknown:
        raise ValueError(f"unknown table(s) {sorted(unknown)}; expected {sorted(runners)}")
    out: dict[str, StudyResult] = {}
    for name in tables:
        out[name] = runners[name]()
        if csv_dir is not None:
            d = Path(csv_dir)
            d.mkdir(parents=True, exist_ok=True)
            result_to_csv(out[name], d / f"{name}.csv")
    return out
