"""Stable facade over the study machinery.

Everything a downstream consumer needs, in a handful of calls::

    import repro

    result = repro.run_study("phase3", workers=8, store="sweep.jsonl")
    repro.api.regenerate_tables(csv_dir="results/")
    later = repro.load_result("sweep.jsonl")
    classes = repro.classify_study(later)

    report = repro.api.doctor("sweep.jsonl")          # invariant audit
    gate = repro.api.lint()                           # static-analysis gate
    chaos = repro.api.run_chaos("phase1", plan="default",
                                store="chaos.jsonl")  # fault-injection drill

The facade hides the moving parts — :class:`~repro.core.engine.SweepEngine`,
:class:`~repro.core.store.ResultStore`,
:class:`~repro.harness.TableHarness` — behind a small surface that is
kept stable across refactors.  Study phases can be named by string
(``"phase1"``/``"phase2"``/``"phase3"``/``"table1"``/``"table2"``/
``"table3"``) or passed as explicit
:class:`~repro.core.study.StudyConfig` grids.  Named phases respect the
``REPRO_MAX_SIZE`` environment cap; explicit configs are taken verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path

from .core.classify import Classification, classify_result
from .core.engine import SweepEngine
from .core.profiles import ProfileCache
from .core.runner import DEFAULT_VIZ_CYCLES, StudyResult
from .core.store import ResultStore
from .core.study import (
    ALGORITHM_NAMES,
    StudyConfig,
    phase1_config,
    phase2_config,
    phase3_config,
)
from .core.validate import ValidationReport, validate_store
from .faults import PLANS, ChaosReport, FaultPlan, get_plan
from .faults import run_chaos as _run_chaos
from .harness.experiments import DEFAULT_CACHE_PATH, TableHarness, effective_sizes
from .lint import LintReport
from .lint import lint_paths as _lint_paths

__all__ = [
    "run_study",
    "load_result",
    "classify_study",
    "regenerate_tables",
    "resolve_config",
    "sweep_engine",
    "harness",
    "run_chaos",
    "doctor",
    "lint",
    "PLANS",
    "get_plan",
]

#: Phase names accepted by :func:`resolve_config` / :func:`run_study`.
PHASE_NAMES = ("phase1", "phase2", "phase3", "table1", "table2", "table3")


def resolve_config(config: StudyConfig | str) -> StudyConfig:
    """Turn a phase name (or pass an explicit grid through) into a config.

    Named phases get their sizes capped by ``REPRO_MAX_SIZE``; an
    explicit :class:`StudyConfig` is returned unchanged.
    """
    if isinstance(config, StudyConfig):
        return config
    name = str(config).lower()
    if name in ("phase1", "table1"):
        base = phase1_config()
    elif name in ("phase2", "table2"):
        base = phase2_config()
    elif name == "phase3":
        base = phase3_config()
    elif name == "table3":
        base = StudyConfig(name="table3", algorithms=ALGORITHM_NAMES, sizes=(256,))
    else:
        raise ValueError(f"unknown study phase {config!r}; expected one of {PHASE_NAMES}")
    return StudyConfig(
        name=base.name,
        algorithms=base.algorithms,
        sizes=effective_sizes(base.sizes),
        caps_w=base.caps_w,
    )


def sweep_engine(
    *,
    workers: int | None = None,
    store: ResultStore | str | Path | None = None,
    cache: str | Path | None = None,
    spec=None,
    dataset_kind: str = "blobs",
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    seed: int = 7,
    timeout_s: float | None = None,
    max_retries: int = 2,
    progress=None,
    trace=None,
    samples=None,
    sample_interval_s: float = 0.1,
) -> SweepEngine:
    """A configured :class:`SweepEngine` (the facade's construction point).

    ``trace`` (a :class:`~repro.obs.trace.Tracer` or a path) records
    spans/events; ``samples`` (``True`` or a path) streams 100 ms power
    samples per run point (see :mod:`repro.obs`).
    """
    return SweepEngine(
        spec,
        dataset_kind=dataset_kind,
        n_cycles=n_cycles,
        seed=seed,
        workers=workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
        store=store,
        profile_cache=ProfileCache(cache),
        progress=progress,
        trace=trace,
        samples=samples,
        sample_interval_s=sample_interval_s,
    )


def run_study(
    config: StudyConfig | str = "phase2",
    *,
    workers: int | None = 0,
    store: ResultStore | str | Path | None = None,
    resume: bool = True,
    cache: str | Path | None = None,
    spec=None,
    dataset_kind: str = "blobs",
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    seed: int = 7,
    progress=None,
    trace=None,
    samples=None,
    sample_interval_s: float = 0.1,
) -> StudyResult:
    """Run a study sweep and return its points.

    ``workers`` > 1 fans profile executions out across processes;
    ``store`` makes the sweep resumable (see
    :mod:`repro.core.engine`).  The default is serial and in-memory —
    identical output, no side effects.  ``trace``/``samples`` switch on
    the telemetry layer (:mod:`repro.obs`): spans + events to a trace
    file, and a per-point power/frequency sample stream next to the
    store.
    """
    engine = sweep_engine(
        workers=workers,
        store=store,
        cache=cache,
        spec=spec,
        dataset_kind=dataset_kind,
        n_cycles=n_cycles,
        seed=seed,
        progress=progress,
        trace=trace,
        samples=samples,
        sample_interval_s=sample_interval_s,
    )
    return engine.run(resolve_config(config), resume=resume)


def run_chaos(
    config: StudyConfig | str = "phase1",
    *,
    plan: FaultPlan | str = "default",
    store: str | Path,
    workers: int | None = 0,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    seed: int = 7,
    chaos_seed: int | None = None,
    spec=None,
    progress=None,
    trace=None,
) -> ChaosReport:
    """Run a sweep under a named (or explicit) fault plan; report survival.

    The contract checked: every point surviving into the store is
    bitwise identical to a fault-free run, unrecoverable points land in
    the quarantine sidecar with reasons, and a torn store tail is
    recovered on resume.  ``chaos_seed`` re-seeds the plan for a
    different (still deterministic) fault schedule.
    """
    resolved_plan = get_plan(plan) if isinstance(plan, str) else plan
    if chaos_seed is not None:
        resolved_plan = resolved_plan.with_seed(chaos_seed)
    return _run_chaos(
        resolve_config(config),
        resolved_plan,
        store=store,
        workers=workers,
        n_cycles=n_cycles,
        seed=seed,
        spec=spec,
        progress=progress,
        trace=trace,
    )


def doctor(
    path: str | Path,
    *,
    spec=None,
    quarantine: bool = False,
) -> ValidationReport:
    """Validate an existing store file against the physical invariants.

    With ``quarantine=True`` violating points are moved to the store's
    ``*.quarantine.jsonl`` sidecar so the main file validates clean.
    """
    return validate_store(path, spec, quarantine=quarantine)


def lint(
    paths=None,
    *,
    baseline: str | Path | None = None,
    update_baseline: bool = False,
    rules=None,
) -> LintReport:
    """Run the contract-aware static-analysis gate (``repro lint``).

    Lints the given files/directories (default: the installed ``repro``
    package) against the RPR rule set and returns a
    :class:`~repro.lint.runner.LintReport`; ``report.ok`` is the gate.
    ``baseline`` grandfather-lists known findings;
    ``update_baseline=True`` rewrites it from the current findings.
    """
    return _lint_paths(
        paths, baseline_path=baseline, update_baseline=update_baseline, rules=rules
    )


def load_result(path: str | Path) -> StudyResult:
    """Load a :class:`StudyResult` from disk.

    Accepts both serialized results (``StudyResult.to_jsonl``) and
    sweep-store files (``--store`` output) — the header line says which.
    """
    p = Path(path)
    with open(p) as fh:
        first = fh.readline()
    header = json.loads(first) if first.strip() else {}
    fmt = header.get("format")
    if fmt == ResultStore.FORMAT:
        return ResultStore(p).load_result()
    return StudyResult.from_jsonl(p)


def classify_study(
    result: StudyResult,
    *,
    size: int | None = None,
    sensitive_cap_w: float = 70.0,
) -> dict[str, Classification]:
    """Classify every algorithm in a result (power opportunity/sensitive).

    With ``size=None`` a single-size result uses its size and a
    multi-size result uses its largest (the paper classifies at the
    biggest grid, where the signal is strongest).
    """
    if size is None:
        sizes = result.sizes
        size = sizes[-1] if sizes else None
    return classify_result(result, size=size, sensitive_cap_w=sensitive_cap_w)


def harness(
    cache: str | Path | None = DEFAULT_CACHE_PATH,
    *,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    seed: int = 7,
    workers: int = 0,
    store: ResultStore | str | Path | None = None,
    progress=None,
) -> TableHarness:
    """A configured table/figure harness (replaces ``ExperimentHarness(...)``)."""
    return TableHarness(
        cache, n_cycles=n_cycles, seed=seed, workers=workers, store=store, progress=progress
    )


def regenerate_tables(
    tables: tuple[str, ...] = ("table1", "table2", "table3"),
    *,
    cache: str | Path | None = DEFAULT_CACHE_PATH,
    csv_dir: str | Path | None = None,
    n_cycles: int = DEFAULT_VIZ_CYCLES,
    workers: int = 0,
) -> dict[str, StudyResult]:
    """Recompute the paper's tables; optionally emit CSV artifacts."""
    from .harness.emit import result_to_csv

    h = harness(cache, n_cycles=n_cycles, workers=workers)
    runners = {"table1": h.table1, "table2": h.table2, "table3": h.table3, "phase3": h.phase3}
    unknown = set(tables) - set(runners)
    if unknown:
        raise ValueError(f"unknown table(s) {sorted(unknown)}; expected {sorted(runners)}")
    out: dict[str, StudyResult] = {}
    for name in tables:
        out[name] = runners[name]()
        if csv_dir is not None:
            d = Path(csv_dir)
            d.mkdir(parents=True, exist_ok=True)
            result_to_csv(out[name], d / f"{name}.csv")
    return out
