"""Seedable, deterministic fault plans.

A :class:`FaultPlan` describes *which* faults to inject and *how often*,
at three layers of the stack:

* **machine** — RAPL cap-enforcement jitter, transient cap-not-met
  excursions, 100 ms power-sample dropout and noise (consumed by
  :class:`repro.faults.machine.MachineFaultInjector`);
* **engine** — worker crashes, hang-past-timeout, flaky transient
  errors (consumed by :meth:`FaultPlan.wrap_job`, which the
  :class:`~repro.core.engine.SweepEngine` calls per job attempt);
* **measurement/store** — sensor-corrupted points that the validation
  gate must quarantine (:meth:`FaultPlan.corrupt_point`) and a torn
  store tail (consumed by :mod:`repro.faults.storefx` / the chaos
  driver).

Every decision is a pure function of ``(seed, site, key)`` — a SHA-256
draw, no global RNG state — so a fault schedule is reproducible across
processes, worker pools, and resumed sweeps: the retry of a crashed job
sees the *same* plan but a different attempt key, which is what lets a
bounded-fault plan guarantee eventual completion.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, replace

__all__ = ["FaultPlan", "InjectedFault", "PLANS", "get_plan"]


class InjectedFault(RuntimeError):
    """A deliberately injected failure (never a real defect)."""

    #: Marker the engine uses to count injected faults without
    #: importing this module (keeps ``repro.core`` below ``repro.faults``).
    injected = True


def _unit(seed: int, site: str, key: str, lane: int = 0) -> float:
    """Deterministic uniform draw in [0, 1) for one (site, key) decision."""
    digest = hashlib.sha256(f"{seed}|{site}|{key}|{lane}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how hard, and under which seed.

    All probabilities are per-decision (per job attempt, per sample,
    per control window, per point); zero disables the site entirely, so
    the default-constructed plan is a no-op.
    """

    name: str = "custom"
    seed: int = 0

    # ------------------------------------------------------- machine layer
    cap_jitter_w: float = 0.0      # sigma (W) of per-decision cap-enforcement jitter
    cap_excursion_p: float = 0.0   # P(transient cap-not-met excursion per decision)
    sample_dropout_p: float = 0.0  # P(a 100 ms power sample is lost)
    sample_noise_w: float = 0.0    # sigma (W) of noise spikes on delivered samples

    # -------------------------------------------------------- engine layer
    worker_crash_p: float = 0.0    # P(injected crash per job attempt)
    worker_hang_p: float = 0.0     # P(injected hang per job attempt)
    hang_s: float = 0.5            # how long a hung worker stalls
    max_faults_per_job: int = 1    # attempts that may fault; later retries run clean

    # ------------------------------------------------- measurement / store
    point_corrupt_p: float = 0.0   # P(a completed point is sensor-corrupted)
    torn_tail: bool = False        # tear the store's final record once (chaos driver)

    def __post_init__(self) -> None:
        for f in ("cap_excursion_p", "sample_dropout_p", "worker_crash_p",
                  "worker_hang_p", "point_corrupt_p"):
            p = getattr(self, f)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{f} must be a probability in [0, 1], got {p}")
        if self.max_faults_per_job < 0:
            raise ValueError("max_faults_per_job must be non-negative")

    # ----------------------------------------------------------- decisions
    def decide(self, site: str, key: str, p: float) -> bool:
        """Deterministic Bernoulli(p) draw for one (site, key)."""
        return p > 0.0 and _unit(self.seed, site, key) < p

    def gauss(self, site: str, key: str, sigma: float) -> float:
        """Deterministic N(0, sigma) draw (Box–Muller from two hash lanes)."""
        if sigma <= 0.0:
            return 0.0
        u1 = max(_unit(self.seed, site, key, lane=1), 1e-15)
        u2 = _unit(self.seed, site, key, lane=2)
        return sigma * math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan under a different seed (a different schedule)."""
        return replace(self, seed=int(seed))

    # -------------------------------------------------------- engine hooks
    def wrap_job(self, base, attempt: int):
        """Wrap a profile-job body with this plan's engine-layer faults.

        The wrapper is picklable (so it survives the trip into a pool
        worker) as long as ``base`` is.
        """
        return _FaultedJob(plan=self, base=base, attempt=int(attempt))

    def corrupt_point(self, point):
        """Return ``point``, possibly sensor-corrupted under this plan.

        Corruption modes rotate deterministically per point: an
        impossible power spike, a runtime collapse that breaks cap
        monotonicity, or a dead (NaN) IPC counter — each one a
        violation :mod:`repro.core.validate` must catch.
        """
        key = f"{point.algorithm}@{point.size}@{point.cap_w:g}"
        if not self.decide("point-corrupt", key, self.point_corrupt_p):
            return point
        d = point.to_dict()
        mode = int(_unit(self.seed, "point-corrupt-mode", key) * 3)
        if mode == 0:
            d["power_w"] = d["cap_w"] * 4.0
        elif mode == 1:
            d["time_s"] = d["time_s"] * 1e-3
        else:
            d["ipc"] = float("nan")
        return type(point).from_dict(d)


@dataclass(frozen=True)
class _FaultedJob:
    """Picklable profile-job wrapper carrying the plan into pool workers."""

    plan: FaultPlan
    base: object
    attempt: int

    def __call__(self, job):
        p = self.plan
        key = f"{job.algorithm}@{job.size}#{self.attempt}"
        if self.attempt < p.max_faults_per_job:
            if p.decide("worker-hang", key, p.worker_hang_p):
                # A hang, not an error: stall past the engine's timeout,
                # then finish normally — the abandoned future's result
                # must be discarded, exactly like a live-locked worker.
                time.sleep(p.hang_s)
            if p.decide("worker-crash", key, p.worker_crash_p):
                raise InjectedFault(
                    f"injected worker crash in {job.algorithm}@{job.size} "
                    f"(attempt {self.attempt})"
                )
        return self.base(job)


#: Named plans for the ``repro chaos`` CLI.  The ``default`` plan is the
#: acceptance scenario: worker crashes + sample dropout + one torn store
#: tail, all recoverable (``max_faults_per_job=1`` bounds crashes per
#: job, so a retry budget ≥ 1 always completes the sweep).
PLANS: dict[str, FaultPlan] = {
    p.name: p
    for p in (
        FaultPlan(
            name="default",
            seed=2019,
            worker_crash_p=0.35,
            cap_jitter_w=0.8,
            cap_excursion_p=0.02,
            sample_dropout_p=0.12,
            sample_noise_w=1.5,
            torn_tail=True,
        ),
        FaultPlan(
            name="engine",
            seed=11,
            worker_crash_p=0.5,
            worker_hang_p=0.25,
            hang_s=0.4,
        ),
        FaultPlan(
            name="machine",
            seed=23,
            cap_jitter_w=2.0,
            cap_excursion_p=0.05,
            sample_dropout_p=0.25,
            sample_noise_w=3.0,
        ),
        FaultPlan(name="store", seed=37, torn_tail=True),
        FaultPlan(
            name="hostile",
            seed=41,
            worker_crash_p=0.5,
            cap_jitter_w=1.5,
            cap_excursion_p=0.05,
            sample_dropout_p=0.2,
            sample_noise_w=2.5,
            point_corrupt_p=0.3,
            torn_tail=True,
        ),
    )
}


def get_plan(name: str) -> FaultPlan:
    """Look up a named plan (``repro chaos --plan NAME``)."""
    try:
        return PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; expected one of {sorted(PLANS)}"
        ) from None
