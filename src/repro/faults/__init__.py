"""Deterministic fault injection for the sweep stack (chaos layer).

Real power-capped measurement pipelines treat sensor dropout, cap
enforcement jitter, and worker failure as first-class events.  This
package makes those failures *injectable, seeded, and reproducible* so
the engine's retry/timeout/fallback paths, the store's torn-tail
recovery, and the validation quarantine gate are all exercised by
realistic faults instead of trusted on faith:

* :class:`FaultPlan` / :data:`PLANS` — what to break, how often, under
  which seed (pure functions of ``(seed, site, key)``);
* :class:`MachineFaultInjector` — cap jitter, enforcement excursions,
  sample dropout/noise, hooked into ``RaplController``/``Processor``;
* :func:`tear_tail` / :func:`corrupt_header` / :func:`flip_fingerprint`
  — byte-level store damage;
* :func:`run_chaos` — the end-to-end driver behind ``repro chaos``.
"""

from .chaos import ChaosReport, run_chaos
from .machine import MachineFaultInjector, clear_machine_faults, inject_machine_faults
from .plan import PLANS, FaultPlan, InjectedFault, get_plan
from .storefx import corrupt_header, flip_fingerprint, tear_tail

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "PLANS",
    "get_plan",
    "MachineFaultInjector",
    "inject_machine_faults",
    "clear_machine_faults",
    "tear_tail",
    "corrupt_header",
    "flip_fingerprint",
    "ChaosReport",
    "run_chaos",
]
