"""Deterministic fault injection for the sweep stack (chaos layer).

Real power-capped measurement pipelines treat sensor dropout, cap
enforcement jitter, and worker failure as first-class events.  This
package makes those failures *injectable, seeded, and reproducible* so
the engine's retry/timeout/fallback paths, the store's torn-tail
recovery, and the validation quarantine gate are all exercised by
realistic faults instead of trusted on faith:

* :class:`FaultPlan` / :data:`PLANS` — what to break, how often, under
  which seed (pure functions of ``(seed, site, key)``);
* :class:`MachineFaultInjector` — cap jitter, enforcement excursions,
  sample dropout/noise, hooked into ``RaplController``/``Processor``;
* :func:`tear_tail` / :func:`corrupt_header` / :func:`flip_fingerprint`
  — byte-level store damage;
* :func:`run_chaos` — the end-to-end driver behind ``repro chaos``;
* :class:`ServiceFaultInjector` / :data:`SERVICE_PLANS` /
  :func:`run_service_chaos` — the daemon-layer drill behind
  ``repro chaos --service`` (worker crash mid-job, heartbeat stalls,
  duplicate delivery, a torn WAL tail);
* :class:`GovernorFaultPlan` / :data:`GOVERNOR_PLANS` /
  :func:`run_governor_chaos` — the signal-feed drill behind
  ``repro chaos --governor`` (sample dropout, step discontinuities,
  trace truncation against a governed power policy).
"""

from .chaos import ChaosReport, run_chaos
from .governor import (
    GOVERNOR_PLANS,
    GovernorChaosReport,
    GovernorFaultPlan,
    get_governor_plan,
    run_governor_chaos,
)
from .machine import MachineFaultInjector, clear_machine_faults, inject_machine_faults
from .plan import PLANS, FaultPlan, InjectedFault, get_plan
from .service import (
    SERVICE_PLANS,
    ServiceChaosReport,
    ServiceFaultInjector,
    get_service_plan,
    run_service_chaos,
    tear_wal_tail,
)
from .storefx import corrupt_header, flip_fingerprint, tear_tail

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "PLANS",
    "get_plan",
    "MachineFaultInjector",
    "inject_machine_faults",
    "clear_machine_faults",
    "tear_tail",
    "corrupt_header",
    "flip_fingerprint",
    "ChaosReport",
    "run_chaos",
    "ServiceFaultInjector",
    "SERVICE_PLANS",
    "get_service_plan",
    "ServiceChaosReport",
    "run_service_chaos",
    "tear_wal_tail",
    "GovernorFaultPlan",
    "GOVERNOR_PLANS",
    "get_governor_plan",
    "GovernorChaosReport",
    "run_governor_chaos",
]
