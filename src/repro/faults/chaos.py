"""The chaos driver: run a sweep under a fault plan and report survival.

One chaos run answers the robustness question end to end:

1. a **fault-free reference** sweep establishes ground truth;
2. the **chaos pass** runs the same grid through the engine with the
   plan's worker crashes/hangs and sensor corruption live, streaming
   into a real store (quarantine gate armed);
3. if the plan says so, the store's tail is **torn** — the byte-level
   state a run killed mid-write leaves behind;
4. the **resume pass** re-opens the damaged store (exercising torn-tail
   recovery) and completes whatever is missing;
5. a traced **machine probe** runs the plan's sensor faults (sample
   dropout, noise, cap jitter/excursions) through the RAPL loop and
   counts what survived.

The :class:`ChaosReport` then states the contract the paper's tables
depend on: every surviving point is bitwise identical to the fault-free
run, and everything else is quarantined with a reason — never silently
wrong in the main store.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from ..core.engine import SweepEngine
from ..core.profiles import ProfileCache, profile_from_ledger
from ..core.store import ResultStore
from ..core.study import StudyConfig
from ..machine.simulator import Processor
from ..machine.spec import MachineSpec
from ..obs.trace import Tracer, event, span
from .machine import MachineFaultInjector, inject_machine_faults
from .plan import FaultPlan
from .storefx import tear_tail

__all__ = ["ChaosReport", "run_chaos"]


@dataclass
class ChaosReport:
    """Survival accounting for one chaos run."""

    plan: str
    config: str
    expected: int = 0
    completed: int = 0
    quarantined: int = 0
    lost: int = 0
    retries: int = 0
    faults_injected: int = 0
    fell_back_serial: bool = False
    torn_bytes: int = 0
    resumed_points: int = 0
    bitwise_identical: bool = True
    samples_seen: int = 0
    samples_dropped: int = 0
    samples_noised: int = 0
    cap_excursions: int = 0
    cap_decisions: int = 0
    quarantine_reasons: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def survived(self) -> bool:
        """Did the contract hold? (survivors bitwise-sane, rest quarantined)"""
        return self.bitwise_identical and self.completed + self.lost == self.expected

    def render(self) -> str:
        lines = [
            f"chaos report — plan '{self.plan}' on {self.config} ({self.wall_s:.2f}s)",
            f"  sweep: {self.completed}/{self.expected} points completed, "
            f"{self.quarantined} quarantined, {self.lost} lost",
            f"  engine: {self.faults_injected} faults injected, {self.retries} retries, "
            f"serial fallback: {'yes' if self.fell_back_serial else 'no'}",
        ]
        if self.torn_bytes:
            lines.append(
                f"  store: torn tail of {self.torn_bytes} bytes recovered, "
                f"{self.resumed_points} points resumed"
            )
        if self.samples_seen:
            delivered = self.samples_seen - self.samples_dropped
            lines.append(
                f"  machine probe: {delivered}/{self.samples_seen} samples delivered "
                f"({self.samples_dropped} dropped, {self.samples_noised} noised), "
                f"{self.cap_excursions} cap excursions / {self.cap_decisions} decisions"
            )
        if self.quarantine_reasons:
            reasons = ", ".join(f"{c}={n}" for c, n in sorted(self.quarantine_reasons.items()))
            lines.append(f"  quarantine reasons: {reasons}")
        lines.append(
            "  surviving points bitwise identical to fault-free run: "
            + ("yes" if self.bitwise_identical else "NO")
        )
        return "\n".join(lines)


def _machine_probe(
    report: ChaosReport,
    plan: FaultPlan,
    config: StudyConfig,
    cache: ProfileCache,
    spec: MachineSpec | None,
) -> None:
    """Run the plan's sensor faults through one traced execution."""
    alg = config.algorithms[0]
    size = min(config.sizes)
    ledger = cache.get(alg, size)
    if ledger is None:
        return
    # Enough cycles that the 100 ms sampler fires a useful number of times.
    profile = profile_from_ledger(alg, size, ledger, n_cycles=20)
    processor = Processor(spec) if spec is not None else Processor()
    injector = inject_machine_faults(processor, plan)
    cap = sorted(config.caps_w)[len(config.caps_w) // 2]
    processor.run_traced(profile, cap, sample_interval_s=0.05)
    counts = injector.summary()
    report.samples_seen = counts["samples_seen"]
    report.samples_dropped = counts["samples_dropped"]
    report.samples_noised = counts["samples_noised"]
    report.cap_excursions = counts["excursions"]
    report.cap_decisions = counts["decisions"]


def run_chaos(
    config: StudyConfig,
    plan: FaultPlan,
    *,
    store: str | Path,
    workers: int | None = 0,
    n_cycles: int = 2,
    seed: int = 7,
    dataset_kind: str = "blobs",
    spec: MachineSpec | None = None,
    timeout_s: float | None = None,
    progress=None,
    trace: Tracer | str | os.PathLike | None = None,
) -> ChaosReport:
    """Execute ``config`` under ``plan`` and report what survived.

    ``store`` must be a path (the resume pass re-opens it from disk to
    exercise recovery).  The reference sweep is serial and in-memory.
    ``trace`` (a :class:`~repro.obs.trace.Tracer` or a path) records all
    five phases — reference sweep, chaos pass, store tear, resume pass,
    machine probe — plus both engines' spans into one trace file.
    """
    t0 = time.perf_counter()
    store_path = Path(store)
    report = ChaosReport(plan=plan.name, config=config.name)
    tracer = trace if isinstance(trace, Tracer) or trace is None else Tracer(trace)

    def engine(**kw) -> SweepEngine:
        return SweepEngine(
            spec,
            dataset_kind=dataset_kind,
            n_cycles=n_cycles,
            seed=seed,
            backoff_s=0.01,
            trace=tracer,
            **kw,
        )

    # Install the tracer as the process default for the duration so the
    # kernel spans fired inside serial engine runs land in the same file.
    with (tracer.as_default() if tracer is not None else nullcontext()):
        with span("chaos", plan=plan.name, config=config.name):
            # 1. Ground truth, no faults.
            with span("chaos-reference"):
                reference = engine(workers=0).run(config)
            ref_points = {p.key: p for p in reference.points}
            report.expected = len(ref_points)

            # A hang is only a fault if something times it out.
            if timeout_s is None and plan.worker_hang_p > 0:
                timeout_s = max(plan.hang_s * 0.5, 0.05)
            # The plan bounds faults per job, so a retry budget at least
            # that deep always recovers from injected crashes.
            max_retries = max(2, plan.max_faults_per_job + 1)

            # 2. Chaos pass.
            chaos_engine = engine(
                workers=workers,
                timeout_s=timeout_s,
                max_retries=max_retries,
                store=store_path,
                faults=plan,
                progress=progress,
            )
            with span("chaos-pass", plan=plan.name):
                chaos_engine.run(config, resume=False)
            report.retries = chaos_engine.stats.retries
            report.faults_injected = chaos_engine.stats.faults_injected
            report.fell_back_serial = chaos_engine.stats.fell_back_serial

            # 3. Damage the store the way a mid-write kill would.
            if plan.torn_tail:
                with span("chaos-tear-store"):
                    report.torn_bytes = tear_tail(store_path)
                event("store-torn", bytes=report.torn_bytes, store=str(store_path))

            # 4. Resume: recovery must complete exactly the missing points.
            resume_engine = engine(
                workers=workers,
                timeout_s=timeout_s,
                max_retries=max_retries,
                store=store_path,
                faults=plan,
                profile_cache=chaos_engine.profile_cache,
                progress=progress,
            )
            with span("chaos-resume"):
                resume_engine.run(config, resume=True)
            report.resumed_points = resume_engine.stats.points_resumed
            report.retries += resume_engine.stats.retries
            report.faults_injected += resume_engine.stats.faults_injected

            # 5. Survival accounting against ground truth.
            final = ResultStore(store_path)
            report.completed = len(final)
            report.bitwise_identical = all(
                key in ref_points and point.to_dict() == ref_points[key].to_dict()
                for key, point in final.points.items()
            )
            quarantined_keys = {p.key for p, _ in final.quarantined()}
            report.quarantined = len(quarantined_keys)
            report.lost = len(set(ref_points) - final.completed_keys())
            for _, reasons in final.quarantined():
                for r in reasons:
                    code = r.get("code", "?")
                    report.quarantine_reasons[code] = (
                        report.quarantine_reasons.get(code, 0) + 1
                    )

            # 6. Sensor-level probe (traced), if the plan has machine faults.
            if any(
                (
                    plan.cap_jitter_w,
                    plan.cap_excursion_p,
                    plan.sample_dropout_p,
                    plan.sample_noise_w,
                )
            ):
                with span("chaos-machine-probe"):
                    _machine_probe(report, plan, config, chaos_engine.profile_cache, spec)

    report.wall_s = time.perf_counter() - t0
    return report
