"""Machine-layer fault injection: the sensors and the enforcement loop.

Real power-capped measurement stacks see three failure shapes that a
clean simulator never produces: the cap is *enforced with jitter* (the
running-average controller over- and under-shoots the programmed
limit), enforcement occasionally *lapses entirely* for a control window
(a transient cap-not-met excursion), and the 100 ms power sampler
*drops or distorts readings* (sensor dropout, noise spikes).

:class:`MachineFaultInjector` realizes those three shapes from a
:class:`~repro.faults.plan.FaultPlan` and plugs into the two hook
points the machine layer exposes:

* ``RaplController.fault_hook`` — consulted once per operating-point
  decision (``cap_jitter_w`` / ``excursion``);
* ``Processor.fault_hook`` — consulted once per emitted power sample
  (``filter_sample``).

The injector draws from its own seeded generator, so a given plan
produces the identical fault trace on every run.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..machine.simulator import PowerSample, Processor
from .plan import FaultPlan

__all__ = ["MachineFaultInjector", "inject_machine_faults", "clear_machine_faults"]


class MachineFaultInjector:
    """Stateful, seeded source of machine-layer faults with counters."""

    def __init__(self, plan: FaultPlan, key: str = "machine"):
        self.plan = plan
        digest = hashlib.sha256(f"{plan.seed}|{key}".encode()).digest()
        self._rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        self.decisions = 0
        self.excursions = 0
        self.samples_seen = 0
        self.samples_dropped = 0
        self.samples_noised = 0

    # ------------------------------------------------------ RAPL decisions
    def cap_jitter_w(self) -> float:
        """Per-decision enforcement error added to the programmed cap (W)."""
        self.decisions += 1
        if self.plan.cap_jitter_w <= 0.0:
            return 0.0
        return float(self._rng.normal(0.0, self.plan.cap_jitter_w))

    def excursion(self) -> bool:
        """Whether enforcement lapses for this decision (full frequency)."""
        if self.plan.cap_excursion_p <= 0.0:
            return False
        hit = bool(self._rng.random() < self.plan.cap_excursion_p)
        if hit:
            self.excursions += 1
        return hit

    # ----------------------------------------------------------- sampling
    def filter_sample(self, sample: PowerSample) -> PowerSample | None:
        """Pass, distort, or drop one 100 ms sampler reading."""
        self.samples_seen += 1
        if self.plan.sample_dropout_p > 0.0 and self._rng.random() < self.plan.sample_dropout_p:
            self.samples_dropped += 1
            return None
        if self.plan.sample_noise_w > 0.0:
            self.samples_noised += 1
            return PowerSample(
                t_s=sample.t_s,
                dt_s=sample.dt_s,
                power_w=sample.power_w + float(self._rng.normal(0.0, self.plan.sample_noise_w)),
                f_eff_ghz=sample.f_eff_ghz,
                instructions=sample.instructions,
                llc_refs=sample.llc_refs,
                llc_misses=sample.llc_misses,
            )
        return sample

    def summary(self) -> dict[str, int]:
        return {
            "decisions": self.decisions,
            "excursions": self.excursions,
            "samples_seen": self.samples_seen,
            "samples_dropped": self.samples_dropped,
            "samples_noised": self.samples_noised,
        }


def inject_machine_faults(processor: Processor, plan: FaultPlan) -> MachineFaultInjector:
    """Install a plan's machine faults on a processor; returns the injector."""
    injector = MachineFaultInjector(plan)
    processor.fault_hook = injector
    processor.rapl.fault_hook = injector
    return injector


def clear_machine_faults(processor: Processor) -> None:
    """Remove any installed machine faults (back to clean physics)."""
    processor.fault_hook = None
    processor.rapl.fault_hook = None
