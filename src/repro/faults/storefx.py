"""Store-layer fault injection: damage a result store the realistic ways.

A sweep's JSONL store dies in three characteristic ways in the wild: a
run killed mid-``write`` leaves a *torn tail* (a partial final record),
disk/transfer corruption scribbles on the *header*, and resuming
against a store produced by a different sweep context is a
*fingerprint mismatch*.  These helpers produce each state on demand so
tests and the chaos driver can prove the recovery paths
(:class:`~repro.core.store.ResultStore` truncates torn tails, refuses
corrupt headers and mismatched fingerprints).

All three operate on the closed file, byte-level — exactly what the
store will see on its next open.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["tear_tail", "corrupt_header", "flip_fingerprint"]


def tear_tail(path: str | Path, *, keep_fraction: float = 0.5) -> int:
    """Truncate the final record mid-line (a writer killed mid-append).

    Keeps ``keep_fraction`` of the last non-empty line's bytes (at
    least one).  Returns the number of bytes torn off; 0 when the file
    has no record line to tear (header-only or empty stores are left
    untouched).
    """
    p = Path(path)
    data = p.read_bytes()
    body = data.rstrip(b"\n")
    nl = body.rfind(b"\n")
    if nl < 0:  # only the header line (or nothing): nothing to tear
        return 0
    last = body[nl + 1:]
    if not last:
        return 0
    keep = nl + 1 + max(1, int(len(last) * keep_fraction))
    with open(p, "r+b") as fh:
        fh.truncate(keep)
    return len(data) - keep


def corrupt_header(path: str | Path) -> None:
    """Scribble on the header line (disk corruption at offset zero)."""
    p = Path(path)
    data = bytearray(p.read_bytes())
    if not data:
        raise ValueError(f"{p} is empty; nothing to corrupt")
    data[0:1] = b"X"
    p.write_bytes(bytes(data))  # repro: lint-ignore[RPR001]: injects disk corruption on purpose — atomicity would defeat the fault


def flip_fingerprint(path: str | Path) -> str:
    """Rewrite the header under a bogus fingerprint; returns the new one.

    Simulates pointing a sweep at a store produced by a different
    context — resuming must raise ``StoreMismatchError``, not mix
    incomparable measurements.
    """
    p = Path(path)
    lines = p.read_text().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["fingerprint"] = "deadbeef" * 2
    lines[0] = json.dumps(header, sort_keys=True) + "\n"
    p.write_text("".join(lines))  # repro: lint-ignore[RPR001]: simulates a foreign store landing in place of ours
    return header["fingerprint"]
