"""Chaos drills for signal-driven power policies (``repro chaos --governor``).

A governed run adds a new failure surface on top of the sweep stack: the
*signal feed*.  Production policy daemons lose price/CO₂ samples, see
step discontinuities when a provider re-bases its series, and run off
the end of stale forecasts.  These drills inject exactly those failures
into a :class:`~repro.insitu.governors.SignalTrace` and assert the
contract that makes governed results publishable:

* every epoch still satisfies the static invariants *piecewise*
  (:meth:`~repro.core.validate.PointValidator.check_epochs`) — power
  under its epoch cap, runtime monotone in granted capacity, equal
  settings agreeing bitwise;
* every decision stays inside the governor's declared range (fractions
  in ``(0, 1]``, caps inside the RAPL window);
* the clean run is deterministic — replaying it reproduces every epoch
  bitwise.

Degraded *performance* is allowed (a stale sample means a stale cap);
degraded *sanity* is not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cloverleaf import step_profile
from ..core.validate import PointValidator
from ..insitu.governors import (
    GovernedRuntime,
    Governor,
    SignalSample,
    SignalTrace,
    make_control,
    parse_governor,
)
from ..machine.simulator import Processor
from ..machine.spec import MachineSpec
from ..obs.trace import event, span
from .plan import _unit

__all__ = [
    "GovernorFaultPlan",
    "GOVERNOR_PLANS",
    "get_governor_plan",
    "GovernorChaosReport",
    "run_governor_chaos",
]


@dataclass(frozen=True)
class GovernorFaultPlan:
    """What to do to the signal feed, how hard, under which seed."""

    name: str
    seed: int = 2019
    #: Probability each non-initial sample is lost (deterministic per
    #: ``(seed, index)`` — same plan, same holes).
    signal_dropout_p: float = 0.0
    #: Signal offset added to the second half of the trace: a provider
    #: re-basing its series mid-run.
    step_jump: float = 0.0
    #: Fraction of the trace kept in the truncation drill (the governor
    #: runs off the end of its forecast and must hold the last sample).
    truncate_frac: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.signal_dropout_p <= 1.0):
            raise ValueError("signal_dropout_p must be in [0, 1]")
        if not (0.0 < self.truncate_frac <= 1.0):
            raise ValueError("truncate_frac must be in (0, 1]")

    def dropout_indices(self, n_samples: int) -> list[int]:
        """Which sample indices this plan drops (index 0 never drops)."""
        if self.signal_dropout_p <= 0.0:
            return []
        return [
            i
            for i in range(1, n_samples)
            if _unit(self.seed, "signal-dropout", str(i)) < self.signal_dropout_p
        ]


GOVERNOR_PLANS: dict[str, GovernorFaultPlan] = {
    p.name: p
    for p in (
        GovernorFaultPlan(name="none"),
        GovernorFaultPlan(
            name="default",
            seed=2019,
            signal_dropout_p=0.5,
            step_jump=150.0,
            truncate_frac=0.4,
        ),
        GovernorFaultPlan(
            name="blackout",
            seed=31,
            signal_dropout_p=0.9,
            step_jump=400.0,
            truncate_frac=0.1,
        ),
    )
}


def get_governor_plan(name: str) -> GovernorFaultPlan:
    """Look up a named plan (``repro chaos --governor --plan NAME``)."""
    try:
        return GOVERNOR_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown governor fault plan {name!r}; "
            f"expected one of {sorted(GOVERNOR_PLANS)}"
        ) from None


@dataclass
class GovernorChaosReport:
    """Contract accounting for one governor chaos run."""

    plan: str
    governor: str
    control: str
    n_epochs: int = 0
    decisions: int = 0
    samples_total: int = 0
    samples_dropped: int = 0
    truncated_to: int = 0
    step_jump: float = 0.0
    #: Per-drill invariant violation counts (0 everywhere = survival).
    violations: dict[str, int] = field(default_factory=dict)
    out_of_range_decisions: int = 0
    bitwise_identical: bool = True
    wall_s: float = 0.0

    @property
    def survived(self) -> bool:
        """Did every drill keep the piecewise invariants intact?"""
        return (
            self.bitwise_identical
            and self.out_of_range_decisions == 0
            and all(n == 0 for n in self.violations.values())
        )

    def render(self) -> str:
        lines = [
            f"governor chaos report — plan '{self.plan}', governor {self.governor}, "
            f"control {self.control} ({self.wall_s:.2f}s)",
            f"  drills: {len(self.violations)} × {self.n_epochs} epochs, "
            f"{self.decisions} decisions",
            f"  signal: {self.samples_dropped}/{self.samples_total} samples dropped, "
            f"step jump {self.step_jump:g}, truncated to {self.truncated_to} samples",
        ]
        for drill, n in self.violations.items():
            lines.append(f"  {drill}: {n} invariant violation(s)")
        if self.out_of_range_decisions:
            lines.append(f"  {self.out_of_range_decisions} decision(s) out of range")
        lines.append(
            "  clean replay bitwise identical: "
            + ("yes" if self.bitwise_identical else "NO")
        )
        lines.append(
            "governor invariants intact under chaos: "
            + ("yes" if self.survived else "NO")
        )
        return "\n".join(lines)


def _out_of_range(epochs, spec: MachineSpec) -> int:
    """Decisions outside the governor/control contract."""
    bad = 0
    for e in epochs:
        frac_ok = 0.0 < e.fraction <= 1.0
        cap_ok = spec.rapl_floor_watts - 1e-9 <= e.cap_w <= spec.tdp_watts + 1e-9
        duty_ok = 0.0 < e.duty_cap <= 1.0
        if not (frac_ok and cap_ok and duty_ok):
            bad += 1
    return bad


def run_governor_chaos(
    plan: GovernorFaultPlan,
    *,
    governor: str | Governor = "step:100=0.7:200=0.5",
    control: str = "power",
    spec: MachineSpec | None = None,
    n_epochs: int = 10,
    n_cells: int = 32**3,
    n_steps: int = 60,
) -> GovernorChaosReport:
    """Run the signal-feed drills and report whether the contract held.

    Four passes over the same work profile and governed policy:

    1. **reference** — the clean trace;
    2. **signal-dropout** — the plan's deterministic sample holes;
    3. **step-discontinuity** — the plan's jump added to the second half;
    4. **trace-truncation** — only the leading ``truncate_frac`` kept.

    Every pass's epochs go through
    :meth:`PointValidator.check_epochs <repro.core.validate.PointValidator.check_epochs>`
    and the decision-range check; finally the reference is replayed and
    must reproduce bitwise.
    """
    t0 = time.perf_counter()
    proc = Processor(spec) if spec is not None else Processor()
    gov = parse_governor(governor) if isinstance(governor, str) else governor
    ctrl = make_control(control, proc.spec)
    validator = PointValidator(proc.spec)
    profile = step_profile(n_cells, n_steps)

    report = GovernorChaosReport(
        plan=plan.name, governor=gov.describe(), control=ctrl.name, n_epochs=n_epochs
    )

    # Scale the trace so the signal actually moves across the run: one
    # sample per full-speed epoch, with enough samples that throttled
    # (slower) epochs still find readings ahead of them.
    epoch_s = proc.run(profile, proc.spec.tdp_watts).time_s
    base = SignalTrace.synthetic(
        "walk",
        seed=plan.seed,
        n=max(4 * n_epochs, 16),
        dt_s=epoch_s,
        lo=50.0,
        hi=250.0,
        name=f"chaos-{plan.name}",
    )
    report.samples_total = len(base)

    half = len(base.samples) // 2
    jumped = SignalTrace(
        tuple(
            SignalSample(s.t_s, s.value + (plan.step_jump if i >= half else 0.0))
            for i, s in enumerate(base.samples)
        ),
        name=base.name + "+jump",
    )
    drop = plan.dropout_indices(len(base))
    report.samples_dropped = len(drop)
    holey = base.without(drop)
    trunc = base.truncated(plan.truncate_frac)
    report.truncated_to = len(trunc)
    report.step_jump = plan.step_jump

    drills = [
        ("reference", base),
        ("signal-dropout", holey),
        ("step-discontinuity", jumped),
        ("trace-truncation", trunc),
    ]
    reference_epochs: list[dict] = []
    with span("governor-chaos", plan=plan.name, control=ctrl.name):
        for drill, trace in drills:
            with span("governor-drill", drill=drill, trace=trace.name):
                result = GovernedRuntime(proc, gov, ctrl, trace).run(profile, n_epochs)
            bad = validator.check_epochs(result.epochs)
            report.violations[drill] = sum(len(v) for v in bad.values())
            report.out_of_range_decisions += _out_of_range(result.epochs, proc.spec)
            report.decisions += result.n_epochs
            event(
                "governor-drill-done",
                drill=drill,
                violations=report.violations[drill],
                distinct_caps=len(result.distinct_caps_w()),
            )
            if drill == "reference":
                reference_epochs = [e.to_dict() for e in result.epochs]

        # Determinism: the clean run must replay bitwise.
        with span("governor-drill", drill="replay", trace=base.name):
            replay = GovernedRuntime(proc, gov, ctrl, base).run(profile, n_epochs)
        report.decisions += replay.n_epochs
        report.bitwise_identical = [e.to_dict() for e in replay.epochs] == reference_epochs

    report.wall_s = time.perf_counter() - t0
    return report
