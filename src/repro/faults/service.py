"""Service-layer chaos: break the daemon, assert the queue's contract.

The sweep-level chaos driver (:mod:`repro.faults.chaos`) proves one
engine survives faults; this module proves the *service* around it
does.  A :class:`ServiceFaultInjector` perturbs the supervisor through
its duck-typed hooks:

* **worker crash mid-job** — ``wrap_progress`` raises an
  :class:`~repro.faults.plan.InjectedFault` after ``crash_after_groups``
  profile completions, killing the delivery partway through a study
  (the retry must *resume* the job's store, not recompute it);
* **heartbeat stall** — ``stall_heartbeat`` suppresses a delivery's
  lease extensions, forcing lease expiry and reclamation while the
  original worker is still running (at-least-once delivery, duplicate
  ``complete`` ignored);
* **duplicate delivery** — ``duplicate_claim`` hands a running job to a
  second worker outright;
* **WAL torn tail** — :func:`tear_wal_tail` cuts the final record in
  half between daemon generations, the byte state a ``kill -9`` mid-append
  leaves behind.

Every decision is the usual pure SHA-256 draw on
``(seed, site, key)``, and every fault class is *budgeted*
(``max_crashes``/``max_stalls``, one duplicate per job) so a plan can
guarantee eventual completion — which is exactly what
:func:`run_service_chaos` asserts: **no accepted job lost, none
silently duplicated, every surviving point bitwise identical to an
uninterrupted run.**
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..core.engine import SweepEngine
from ..core.store import ResultStore
from ..core.study import StudyConfig
from ..obs.trace import log_event
from ..serve.service import SweepService
from ..serve.wal import QueueState, WriteAheadLog
from .plan import InjectedFault

__all__ = [
    "SERVICE_PLANS",
    "ServiceChaosReport",
    "ServiceFaultInjector",
    "get_service_plan",
    "run_service_chaos",
    "tear_wal_tail",
]


@dataclass
class ServiceFaultInjector:
    """Seeded, budgeted fault decisions for the supervisor's hooks.

    Unlike :class:`~repro.faults.plan.FaultPlan` this carries counters
    (faults actually fired), so instances are per-run — build a fresh
    one per chaos drill via :func:`get_service_plan`.
    """

    name: str = "custom"
    seed: int = 20107

    job_crash_p: float = 0.0        # P(a delivery crashes mid-study)
    crash_after_groups: int = 1     # profile completions before the crash fires
    max_crashes: int = 2            # total crash budget (keeps completion reachable)
    heartbeat_stall_p: float = 0.0  # P(a delivery's heartbeats go silent)
    max_stalls: int = 1             # total stall budget (lease-expiry budget is finite)
    duplicate_delivery_p: float = 0.0  # P(a running job is redelivered once)
    torn_wal: bool = False          # cut the WAL's last record between daemons

    crashes_injected: int = 0
    stalls_injected: int = 0
    duplicates_injected: int = 0
    _dup_fired: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        for f in ("job_crash_p", "heartbeat_stall_p", "duplicate_delivery_p"):
            p = getattr(self, f)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{f} must be a probability, got {p}")

    def with_seed(self, seed: int) -> "ServiceFaultInjector":
        return replace(
            self,
            seed=int(seed),
            crashes_injected=0,
            stalls_injected=0,
            duplicates_injected=0,
            _dup_fired=set(),
        )

    # ------------------------------------------------------------- decisions
    def _unit(self, site: str, key: str) -> float:
        digest = hashlib.sha256(f"service|{self.seed}|{site}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _decide(self, site: str, key: str, p: float) -> bool:
        return p > 0.0 and self._unit(site, key) < p

    # ----------------------------------------------------- supervisor hooks
    def wrap_progress(self, job_id: str, attempt: int, progress):
        """Crash this delivery after N profile completions (maybe)."""
        if self.crashes_injected >= self.max_crashes or not self._decide(
            "job-crash", f"{job_id}|{attempt}", self.job_crash_p
        ):
            return progress
        seen = {"n": 0}

        def crashing(event: dict) -> None:
            progress(event)
            if event.get("kind") != "profile-done":
                return
            seen["n"] += 1
            if seen["n"] >= self.crash_after_groups:
                self.crashes_injected += 1
                raise InjectedFault(
                    f"service chaos: crashed delivery of {job_id} "
                    f"(attempt {attempt}, after {seen['n']} profile(s))"
                )

        return crashing

    def stall_heartbeat(self, job_id: str, worker: str) -> bool:
        """Silence this delivery's lease extensions (maybe)."""
        if self.stalls_injected >= self.max_stalls or not self._decide(
            "heartbeat-stall", f"{job_id}|{worker}", self.heartbeat_stall_p
        ):
            return False
        self.stalls_injected += 1
        return True

    def duplicate_claim(self, job_id: str) -> bool:
        """Redeliver a running job to a second worker (once per job)."""
        if job_id in self._dup_fired or not self._decide(
            "duplicate-delivery", job_id, self.duplicate_delivery_p
        ):
            return False
        self._dup_fired.add(job_id)
        self.duplicates_injected += 1
        return True


#: Named service plans, mirroring :data:`repro.faults.plan.PLANS`.
SERVICE_PLANS: dict[str, ServiceFaultInjector] = {
    "none": ServiceFaultInjector(name="none"),
    "default": ServiceFaultInjector(
        name="default",
        job_crash_p=1.0,
        max_crashes=2,
        heartbeat_stall_p=1.0,
        max_stalls=1,
        duplicate_delivery_p=0.5,
        torn_wal=True,
    ),
    "crashy": ServiceFaultInjector(
        name="crashy", job_crash_p=1.0, max_crashes=3, crash_after_groups=1
    ),
    "torn": ServiceFaultInjector(name="torn", torn_wal=True),
}


def get_service_plan(name: str) -> ServiceFaultInjector:
    """A *fresh* injector for a named service plan (counters zeroed)."""
    try:
        plan = SERVICE_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown service plan {name!r}; expected one of {sorted(SERVICE_PLANS)}"
        ) from None
    return plan.with_seed(plan.seed)


def tear_wal_tail(path: str | Path) -> int:
    """Cut the WAL's final record in half — a crash mid-append, byte for byte.

    Returns the number of bytes removed (0 when the file is too small to
    tear).  At most one record is damaged, and every record's effect is
    re-derivable, so replay after the tear must converge to the same
    terminal state.
    """
    p = Path(path)
    data = p.read_bytes()
    body = data[:-1] if data.endswith(b"\n") else data
    start = body.rfind(b"\n") + 1
    last = body[start:]
    if len(last) < 2:
        return 0
    keep = start + len(last) // 2
    with open(p, "r+b") as fh:
        fh.truncate(keep)
    return len(data) - keep


@dataclass
class ServiceChaosReport:
    """Contract accounting for one service chaos drill."""

    plan: str
    config: str
    n_jobs: int = 0
    completed: int = 0
    failed: int = 0
    lost: int = 0
    expected_points: int = 0
    crashes_injected: int = 0
    stalls_injected: int = 0
    duplicates_injected: int = 0
    duplicates_ignored: int = 0
    lease_expirations: int = 0
    retries: int = 0
    torn_bytes: int = 0
    wal_corrupt_lines: int = 0
    replay_consistent: bool = True
    bitwise_identical: bool = True
    breaker_final: str = "closed"
    wall_s: float = 0.0

    @property
    def survived(self) -> bool:
        """The at-least-once / no-lost-jobs / bitwise contract, in one bool."""
        return (
            self.lost == 0
            and self.failed == 0
            and self.completed == self.n_jobs
            and self.bitwise_identical
            and self.replay_consistent
        )

    def render(self) -> str:
        lines = [
            f"service chaos report — plan '{self.plan}' on {self.config} "
            f"({self.wall_s:.2f}s)",
            f"  jobs: {self.completed}/{self.n_jobs} completed, "
            f"{self.failed} failed, {self.lost} lost",
            f"  injected: {self.crashes_injected} crashes, "
            f"{self.stalls_injected} heartbeat stalls, "
            f"{self.duplicates_injected} duplicate deliveries",
            f"  queue: {self.retries} retries, {self.lease_expirations} lease "
            f"expirations, {self.duplicates_ignored} duplicate records ignored, "
            f"breaker {self.breaker_final}",
        ]
        if self.torn_bytes:
            lines.append(
                f"  wal: torn tail of {self.torn_bytes} bytes recovered, "
                f"{self.wal_corrupt_lines} corrupt line(s) skipped"
            )
        lines.append(
            "  replay converges to the same terminal state: "
            + ("yes" if self.replay_consistent else "NO")
        )
        lines.append(
            "  surviving points bitwise identical to uninterrupted run: "
            + ("yes" if self.bitwise_identical else "NO")
        )
        return "\n".join(lines)


def run_service_chaos(
    config: StudyConfig,
    plan: ServiceFaultInjector | str = "default",
    *,
    spool: str | Path,
    n_jobs: int = 2,
    workers: int = 2,
    lease_s: float = 1.0,
    n_cycles: int = 2,
    seed: int = 7,
    dataset_kind: str = "blobs",
    chaos_seed: int | None = None,
    trace=None,
) -> ServiceChaosReport:
    """Submit ``n_jobs`` studies, torture the daemon, assert the contract.

    Phases: (1) an uninterrupted reference sweep establishes the
    expected points; (2) submissions are durably accepted; (3) a first
    daemon generation drains under the injector's crashes, stalls, and
    duplicate deliveries; (4) if the plan says so, the WAL's last record
    is torn in half; (5) a *fresh* service replays the WAL and drains
    whatever the tear re-opened.  The report then checks: every accepted
    job completed (none lost, none failed), duplicate effects were
    ignored rather than double-counted, a from-scratch replay converges
    to the same terminal state, and every job's store is bitwise
    identical to the reference.
    """
    t0 = time.perf_counter()
    injector = get_service_plan(plan) if isinstance(plan, str) else plan
    if chaos_seed is not None:
        injector = injector.with_seed(chaos_seed)
    spool = Path(spool)
    report = ServiceChaosReport(plan=injector.name, config=config.name)
    report.n_jobs = int(n_jobs)

    # 1. Ground truth: one uninterrupted serial sweep, in memory.
    reference = SweepEngine(
        dataset_kind=dataset_kind, n_cycles=n_cycles, seed=seed, workers=0
    ).run(config)
    ref_points = {p.key: p.to_dict() for p in reference.points}
    report.expected_points = len(ref_points)

    def service(active_injector) -> SweepService:
        return SweepService(
            spool,
            workers=workers,
            lease_s=lease_s,
            poll_interval_s=0.01,
            breaker_threshold=3,
            backoff_base_s=0.01,
            backoff_cap_s=0.25,
            trace=trace,
            injector=active_injector,
        )

    # 2. Durable submissions.
    svc = service(injector)
    job_ids: list[str] = []
    for _ in range(n_jobs):
        receipt = svc.submit(
            config, dataset_kind=dataset_kind, seed=seed, n_cycles=n_cycles,
            max_retries=max(2, injector.max_crashes),
        )
        if not receipt.accepted:
            raise RuntimeError(f"chaos submission shed: {receipt.status}")
        job_ids.append(receipt.job_id)

    # 3. First daemon generation, faults live.
    svc.run_daemon(drain=True)

    # 4. The byte state a kill -9 mid-append leaves behind.
    if injector.torn_wal:
        report.torn_bytes = tear_wal_tail(spool / "wal.jsonl")
        log_event(
            "serve-wal-torn", f"tore {report.torn_bytes} bytes off {spool}/wal.jsonl",
            bytes=report.torn_bytes,
        )

    # 5. A fresh generation replays and finishes whatever re-opened.
    svc2 = service(injector)
    final = svc2.run_daemon(drain=True)

    # ------------------------------------------------------------ verdicts
    state = svc2.state
    for job_id in job_ids:
        job = state.get(job_id)
        if job is None:
            report.lost += 1
            continue
        if job.status == "completed":
            report.completed += 1
        elif job.status == "failed":
            report.failed += 1
        else:  # still pending/running after a drained daemon: lost to limbo
            report.lost += 1
        report.lease_expirations += job.expirations
        report.retries += job.failures

    report.crashes_injected = injector.crashes_injected
    report.stalls_injected = injector.stalls_injected
    report.duplicates_injected = injector.duplicates_injected
    report.duplicates_ignored = state.duplicates_ignored
    report.wal_corrupt_lines = svc2.wal.corruption_count()
    report.breaker_final = final["breaker"]

    # Bitwise identity: every completed job's store vs. the reference.
    for job_id in job_ids:
        job = state.get(job_id)
        if job is None or job.status != "completed":
            continue
        store = ResultStore(svc2.store_path(job_id))
        points = {key: p.to_dict() for key, p in store.points.items()}
        if points != ref_points:
            report.bitwise_identical = False

    # Replay determinism: a from-scratch reader sees the same terminal state.
    fresh_wal = WriteAheadLog(spool / "wal.jsonl")
    fresh = QueueState()
    fresh.apply_all(fresh_wal.replay())
    report.replay_consistent = fresh.statuses() == state.statuses()

    report.wall_s = time.perf_counter() - t0
    return report
