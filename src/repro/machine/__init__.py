"""Simulated Broadwell socket: caches, DVFS, power model, RAPL capping."""

from .cache import CacheModel, MemoryBehavior
from .exec_model import ExecutionModel, SegmentEval
from .msr import ENERGY_UNIT_J, ENERGY_WRAP, MsrBank
from .power import PowerBreakdown, PowerModel
from .rapl import MIN_DUTY, OperatingPoint, RaplController
from .simulator import PowerSample, Processor, RunResult, SegmentRecord
from .presets import ALL_PRESETS, LOWPOWER_MANYCORE, SKYLAKE_LIKE
from .spec import BROADWELL_E5_2695V4, MachineSpec

__all__ = [
    "CacheModel",
    "MemoryBehavior",
    "ExecutionModel",
    "SegmentEval",
    "MsrBank",
    "ENERGY_UNIT_J",
    "ENERGY_WRAP",
    "PowerBreakdown",
    "PowerModel",
    "RaplController",
    "OperatingPoint",
    "MIN_DUTY",
    "Processor",
    "RunResult",
    "SegmentRecord",
    "PowerSample",
    "MachineSpec",
    "BROADWELL_E5_2695V4",
    "SKYLAKE_LIKE",
    "LOWPOWER_MANYCORE",
    "ALL_PRESETS",
]
