"""Alternative machine presets — the paper's §VIII future work.

"Another extension of this work is to explore how the power and
performance tradeoffs for visualization algorithms compare across other
architectures that provide power capping."  These presets model two
contrasting cap-capable sockets against the study's Broadwell:

* **SKYLAKE_LIKE** — a wider, hotter server core generation: more
  cores, higher all-core turbo, bigger TDP, *smaller shared* L3 (1.375
  MB/core non-inclusive ≈ 28 MB visible) but much larger L2.  Capacity
  cliffs move; compute-bound work gains headroom.
* **LOWPOWER_MANYCORE** — a throughput part (Knights-Landing-flavored):
  many slow cores, modest turbo range, wide memory system.  Nearly
  everything becomes latency/issue-bound and the cap range barely
  bites — the "free deep cap" region widens.

The electrical constants follow the same first-order model as the
Broadwell calibration; they are intended for *relative* cross-
architecture comparisons (see ``benchmarks/bench_ablation_architectures``).
"""

from __future__ import annotations

import dataclasses

from .spec import BROADWELL_E5_2695V4, MachineSpec

__all__ = ["SKYLAKE_LIKE", "LOWPOWER_MANYCORE", "ALL_PRESETS"]


SKYLAKE_LIKE: MachineSpec = dataclasses.replace(
    BROADWELL_E5_2695V4,
    name="Skylake-SP-like, 1 socket",
    n_cores=24,
    f_min=1.0,
    f_base=2.4,
    f_turbo=2.9,
    tdp_watts=150.0,
    rapl_floor_watts=50.0,
    v_at_fmin=0.78,
    v_slope=0.168,  # V(2.9) ~ 1.10
    l2_bytes_per_core=1024 * 1024,
    llc_bytes=28 * 1024 * 1024,
    dram_bandwidth_Bps=95e9,
    dram_latency_s=85e-9,
    p_uncore_idle=16.0,
    p_leak_nominal=22.0,
    c_dyn=1.05,
)

LOWPOWER_MANYCORE: MachineSpec = dataclasses.replace(
    BROADWELL_E5_2695V4,
    name="Low-power manycore, 1 socket",
    n_cores=64,
    f_min=1.0,
    f_base=1.3,
    f_turbo=1.5,
    tdp_watts=215.0,
    rapl_floor_watts=120.0,
    v_at_fmin=0.75,
    v_slope=0.3,  # V(1.5) ~ 0.9
    l1_bytes_per_core=32 * 1024,
    l2_bytes_per_core=512 * 1024,
    llc_bytes=16 * 1024 * 1024,
    dram_bandwidth_Bps=380e9,  # MCDRAM-like
    dram_latency_s=150e-9,
    cpi_fp=0.8,
    cpi_simd=0.5,
    cpi_int=0.5,
    cpi_load=0.8,
    cpi_store=1.2,
    cpi_branch=0.9,
    cpi_other=0.5,
    p_uncore_idle=35.0,
    p_leak_nominal=30.0,
    c_dyn=0.55,
)

#: Every cap-capable socket the cross-architecture study sweeps.
ALL_PRESETS: dict[str, MachineSpec] = {
    "broadwell": BROADWELL_E5_2695V4,
    "skylake": SKYLAKE_LIKE,
    "manycore": LOWPOWER_MANYCORE,
}
