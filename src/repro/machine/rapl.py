"""RAPL-like power-cap controller.

Intel's Running Average Power Limit holds a socket under a programmed cap
by lowering the core frequency/voltage operating point, falling back to
clock throttling (T-states) when even the lowest P-state is too hot.
This module reproduces that policy against the simulated power model:

* :meth:`RaplController.operating_point` — pick the highest frequency
  bin whose modeled power fits the cap; if none fits, duty-cycle at the
  floor frequency.
* The traced simulator (:mod:`repro.machine.simulator`) re-runs the
  decision every control window, optionally with measurement noise and
  an integral correction — mirroring how hardware RAPL tracks a running
  average rather than clairvoyant truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .exec_model import SegmentEval
from .power import PowerModel
from .spec import MachineSpec

__all__ = ["OperatingPoint", "RaplController", "MIN_DUTY"]

# Hardware T-state throttling bottoms out around 12.5% duty on this era
# of Intel parts; below that the part simply exceeds the cap.
MIN_DUTY = 0.125


@dataclass(frozen=True)
class OperatingPoint:
    """The controller's decision for one segment under one cap."""

    f_ghz: float
    duty: float
    power_w: float        # modeled power actually drawn at this point
    cap_met: bool         # False when even max throttling exceeds the cap


class RaplController:
    """Chooses frequency (and duty) to hold a power cap."""

    def __init__(
        self,
        spec: MachineSpec,
        power_model: PowerModel | None = None,
        fault_hook: object | None = None,
    ):
        self.spec = spec
        self.power_model = power_model or PowerModel(spec)
        #: Optional fault injector (``repro.faults``): consulted once per
        #: operating-point decision for enforcement jitter and transient
        #: cap-not-met excursions.  None = clean enforcement.
        self.fault_hook = fault_hook
        #: Telemetry accounting, read (as deltas) by the sweep engine's
        #: metrics publication.  Plain ints so the hot decision loop pays
        #: no lock or registry lookup.
        self.decisions = 0
        self.throttle_decisions = 0

    def validate_cap(self, cap_watts: float) -> float:
        """Clamp a requested cap into the socket's programmable range."""
        # NaN compares False against everything, so the <= 0 guard alone
        # would let NaN (and inf) flow into min/max and silently poison
        # every downstream measurement.
        if not math.isfinite(cap_watts):
            raise ValueError(f"power cap must be finite, got {cap_watts}")
        if cap_watts <= 0:
            raise ValueError(f"power cap must be positive, got {cap_watts}")
        return float(min(max(cap_watts, self.spec.rapl_floor_watts), self.spec.tdp_watts))

    def operating_point(
        self,
        ev: SegmentEval,
        cap_watts: float,
        *,
        power_offset_w: float = 0.0,
        f_ceiling_ghz: float | None = None,
        duty_cap: float = 1.0,
    ) -> OperatingPoint:
        """Highest-performance operating point whose power fits the cap.

        ``power_offset_w`` shifts the modeled power (the traced
        simulator's integral correction feeds in here).
        ``f_ceiling_ghz`` pins the P-state scan below a DVFS frequency
        ceiling; ``duty_cap`` upper-bounds the clock duty (DDCM-style
        modulation).  Both default to unconstrained, in which case the
        decision is bit-identical to the historical RAPL-only path.
        """
        cap = self.validate_cap(cap_watts)
        if not (MIN_DUTY <= duty_cap <= 1.0):
            raise ValueError(f"duty_cap must be in [{MIN_DUTY}, 1], got {duty_cap}")
        self.decisions += 1
        bins = self.spec.freq_bins
        if f_ceiling_ghz is not None:
            # Tolerance matches the bin rounding in MachineSpec.freq_bins.
            bins = bins[bins <= f_ceiling_ghz + 1e-6]
            if len(bins) == 0:
                raise ValueError(
                    f"frequency ceiling {f_ceiling_ghz} GHz is below the lowest "
                    f"P-state bin ({self.spec.f_min} GHz)"
                )
        hook = self.fault_hook
        if hook is not None:
            # Enforcement jitter: hardware tracks a running average, so
            # the cap it actually holds wobbles around the programmed one.
            cap = max(1.0, cap + hook.cap_jitter_w())
            if hook.excursion():
                # Transient enforcement lapse: the controller grants full
                # frequency for this decision regardless of the cap, and
                # honestly reports whether the cap was met.  The DVFS
                # ceiling and duty cap are honored even during a lapse —
                # they are programmed limits, not feedback.
                f = float(bins[-1])
                p = self.power_model.power(ev, f, duty=duty_cap) + power_offset_w
                return OperatingPoint(f, duty_cap, p - power_offset_w, p <= cap)
        # Scan from the top: RAPL grants as much frequency as fits.
        for f in bins[::-1]:
            p = self.power_model.power(ev, float(f), duty=duty_cap) + power_offset_w
            if p <= cap:
                return OperatingPoint(float(f), duty_cap, p - power_offset_w, True)

        # No P-state fits: throttle at the floor frequency.
        return self._duty_cycle(ev, cap, power_offset_w, duty_cap=duty_cap)

    def _duty_cycle(
        self, ev: SegmentEval, cap: float, power_offset_w: float, *, duty_cap: float = 1.0
    ) -> OperatingPoint:
        self.throttle_decisions += 1
        f = self.spec.f_min
        lo, hi = MIN_DUTY, duty_cap

        def p_at(duty: float) -> float:
            return self.power_model.power(ev, f, duty=duty) + power_offset_w

        if p_at(MIN_DUTY) > cap:
            # Even maximal throttling exceeds the cap (extremely
            # traffic-heavy work under an extreme cap) — run at the
            # floor and report the violation, as real silicon would.
            return OperatingPoint(f, MIN_DUTY, p_at(MIN_DUTY) - power_offset_w, False)

        for _ in range(40):  # bisection to well below 0.1 W resolution
            mid = 0.5 * (lo + hi)
            if p_at(mid) <= cap:
                lo = mid
            else:
                hi = mid
        return OperatingPoint(f, lo, p_at(lo) - power_offset_w, True)
