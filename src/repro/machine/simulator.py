"""The simulated processor: run a work profile under a power cap.

Two execution modes:

* :meth:`Processor.run` — closed-form: the controller's decision is
  constant within a segment (the model is stationary per segment), so
  time/energy/counters are computed directly.  Used by the sweeps —
  288 configurations evaluate in milliseconds.
* :meth:`Processor.run_traced` — windowed: re-runs the RAPL decision
  every control window with optional measurement noise and an integral
  correction, depositing energy/counters into an MSR bank that a
  100 ms sampler reads — the paper's actual measurement loop.  With
  noise disabled the traced result converges to the closed form (a
  property the test suite checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..workload import WorkProfile
from .exec_model import ExecutionModel, SegmentEval
from .msr import MsrBank
from .power import PowerModel
from .rapl import OperatingPoint, RaplController
from .spec import BROADWELL_E5_2695V4, MachineSpec

__all__ = ["SegmentRecord", "PowerSample", "RunResult", "Processor"]


@dataclass(frozen=True)
class SegmentRecord:
    """What one segment did under the cap."""

    name: str
    f_ghz: float
    duty: float
    time_s: float
    power_w: float
    energy_j: float
    instructions: float
    llc_refs: float
    llc_misses: float
    stall_fraction: float
    cap_met: bool


@dataclass(frozen=True)
class PowerSample:
    """One 100 ms sampler reading, derived from MSR deltas."""

    t_s: float
    dt_s: float
    power_w: float
    f_eff_ghz: float
    instructions: float
    llc_refs: float
    llc_misses: float


@dataclass
class RunResult:
    """Aggregate outcome of executing a profile under a cap."""

    profile_name: str
    cap_watts: float
    spec: MachineSpec
    records: list[SegmentRecord]
    msr: MsrBank
    samples: list[PowerSample] = field(default_factory=list)

    @property
    def time_s(self) -> float:
        return sum(r.time_s for r in self.records)

    @property
    def energy_j(self) -> float:
        return sum(r.energy_j for r in self.records)

    @property
    def avg_power_w(self) -> float:
        t = self.time_s
        return self.energy_j / t if t > 0 else 0.0

    @property
    def instructions(self) -> float:
        return sum(r.instructions for r in self.records)

    @property
    def effective_freq_ghz(self) -> float:
        """APERF/MPERF × base — the paper's effective frequency."""
        return self.msr.effective_frequency_ghz(self.spec.f_base)

    @property
    def ipc(self) -> float:
        """The paper's IPC: INST_RETIRED.ANY / CPU_CLK_UNHALTED.REF_TSC."""
        if self.msr.clk_unhalted <= 0:
            return 0.0
        return self.msr.inst_retired / self.msr.clk_unhalted

    @property
    def ipc_core(self) -> float:
        """IPC against *actual* core cycles (APERF) instead of reference."""
        if self.msr.aperf <= 0:
            return 0.0
        return self.msr.inst_retired / self.msr.aperf

    @property
    def llc_miss_rate(self) -> float:
        """LONG_LAT_CACHE.MISS / LONG_LAT_CACHE.REF."""
        if self.msr.llc_reference <= 0:
            return 0.0
        return self.msr.llc_miss / self.msr.llc_reference

    @property
    def cap_met(self) -> bool:
        return all(r.cap_met for r in self.records)

    # ------------------------------------------------------------- sampling
    def sample_stream(self, interval_s: float = 0.1) -> list[PowerSample]:
        """Synthesize the 100 ms sampler's readings from a closed-form run.

        Traced mode produces samples by construction; closed-form runs
        (what the sweeps use) only keep per-segment aggregates.  Within
        a segment the operating point is constant, so the sampler's
        readings are exactly recoverable: walk the segments, split each
        across ``interval_s`` windows, and emit one reading per window
        (plus a final partial window).  The stream's time-weighted mean
        power equals :attr:`avg_power_w` identically, and the sample
        count is ``ceil(time_s / interval_s)`` — at least ``1/interval_s``
        Hz over the run, the paper's Figures 4–5 granularity.
        """
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        samples: list[PowerSample] = []
        t = 0.0
        window_t0 = 0.0
        acc = [0.0, 0.0, 0.0, 0.0, 0.0]  # energy, f_eff*dt, instr, refs, misses

        def emit() -> None:
            dt = t - window_t0
            samples.append(
                PowerSample(
                    t_s=window_t0,
                    dt_s=dt,
                    power_w=acc[0] / dt if dt > 0 else 0.0,
                    f_eff_ghz=acc[1] / dt if dt > 0 else 0.0,
                    instructions=acc[2],
                    llc_refs=acc[3],
                    llc_misses=acc[4],
                )
            )
            acc[:] = [0.0, 0.0, 0.0, 0.0, 0.0]

        for r in self.records:
            if r.time_s <= 0:
                continue
            remaining = r.time_s
            f_eff = r.f_ghz * r.duty  # what APERF/MPERF reports under throttling
            while remaining > 1e-15:
                room = window_t0 + interval_s - t
                dt = min(remaining, room)
                frac = dt / r.time_s
                acc[0] += r.power_w * dt
                acc[1] += f_eff * dt
                acc[2] += r.instructions * frac
                acc[3] += r.llc_refs * frac
                acc[4] += r.llc_misses * frac
                t += dt
                remaining -= dt
                if t >= window_t0 + interval_s - 1e-15:
                    emit()
                    window_t0 = t
        if t > window_t0:
            emit()
        return samples


class Processor:
    """One simulated socket with a RAPL controller attached."""

    def __init__(self, spec: MachineSpec = BROADWELL_E5_2695V4):
        self.spec = spec
        self.exec_model = ExecutionModel(spec)
        self.power_model = PowerModel(spec)
        self.rapl = RaplController(spec, self.power_model)
        #: Optional fault injector (``repro.faults``): each traced-mode
        #: power sample passes through ``fault_hook.filter_sample``,
        #: which may distort (noise spike) or drop (sensor dropout) it.
        #: None = every sample is delivered intact.
        self.fault_hook = None

    # ----------------------------------------------------------- closed form
    def run(
        self,
        profile: WorkProfile,
        cap_watts: float | None = None,
        *,
        f_ceiling_ghz: float | None = None,
        duty_cap: float = 1.0,
    ) -> RunResult:
        """Execute ``profile`` under ``cap_watts`` (default: TDP), closed-form.

        ``f_ceiling_ghz`` pins the controller's P-state scan under a
        DVFS frequency ceiling and ``duty_cap`` bounds the clock duty
        (DDCM); left at their defaults the run is bit-identical to the
        historical RAPL-only path — the governor control methods in
        :mod:`repro.insitu.governors` are the intended callers.
        """
        cap = self.rapl.validate_cap(cap_watts if cap_watts is not None else self.spec.tdp_watts)
        profile.validate()
        msr = MsrBank()
        records: list[SegmentRecord] = []
        for seg in profile:
            ev = self.exec_model.evaluate(seg)
            op = self.rapl.operating_point(
                ev, cap, f_ceiling_ghz=f_ceiling_ghz, duty_cap=duty_cap
            )
            records.append(self._commit(ev, op, msr))
        return RunResult(profile.name, cap, self.spec, records, msr)

    def _commit(self, ev: SegmentEval, op: OperatingPoint, msr: MsrBank) -> SegmentRecord:
        """Account a fully-executed segment into the MSR bank."""
        t = ev.time_at(op.f_ghz, duty=op.duty)
        p = op.power_w
        e = p * t
        self._deposit(ev, msr, op, fraction=1.0, dt=t, energy=e)
        return SegmentRecord(
            name=ev.segment.name,
            f_ghz=op.f_ghz,
            duty=op.duty,
            time_s=t,
            power_w=p,
            energy_j=e,
            instructions=ev.instructions,
            llc_refs=ev.memory.llc_refs,
            llc_misses=ev.memory.llc_misses,
            stall_fraction=ev.stall_fraction(op.f_ghz, duty=op.duty),
            cap_met=op.cap_met,
        )

    def _deposit(
        self,
        ev: SegmentEval,
        msr: MsrBank,
        op: OperatingPoint,
        *,
        fraction: float,
        dt: float,
        energy: float,
    ) -> None:
        n = self.spec.n_cores
        msr.aperf += op.f_ghz * 1e9 * dt * op.duty * n
        msr.mperf += self.spec.f_base * 1e9 * dt * n
        msr.clk_unhalted += self.spec.f_base * 1e9 * dt * n
        msr.inst_retired += ev.instructions * fraction
        msr.llc_reference += ev.memory.llc_refs * fraction
        msr.llc_miss += ev.memory.llc_misses * fraction
        msr.deposit_energy(energy)

    # --------------------------------------------------------------- traced
    def run_traced(
        self,
        profile: WorkProfile,
        cap_watts: float | None = None,
        *,
        window_s: float = 1e-3,
        sample_interval_s: float = 0.1,
        noise_sigma_w: float = 0.0,
        seed: int = 0,
        ki: float = 0.25,
    ) -> RunResult:
        """Windowed execution with RAPL feedback and 100 ms MSR sampling.

        Each control window the controller re-picks the operating point
        using the modeled power shifted by an integral correction built
        from (optionally noisy) measurements — hardware RAPL's running
        average in miniature.
        """
        cap = self.rapl.validate_cap(cap_watts if cap_watts is not None else self.spec.tdp_watts)
        profile.validate()
        rng = np.random.default_rng(seed)
        msr = MsrBank()
        records: list[SegmentRecord] = []
        samples: list[PowerSample] = []

        t_now = 0.0
        offset = 0.0
        last_snap = msr.snapshot()
        last_sample_t = 0.0

        def emit_sample(s: PowerSample) -> None:
            if self.fault_hook is not None:
                s = self.fault_hook.filter_sample(s)
            if s is not None:
                samples.append(s)

        for seg in profile:
            ev = self.exec_model.evaluate(seg)
            remaining = 1.0
            seg_t = seg_p_dt = seg_e = 0.0
            seg_f_dt = seg_duty_dt = seg_stall_dt = 0.0
            seg_met = True
            while remaining > 1e-12:
                op = self.rapl.operating_point(ev, cap, power_offset_w=offset)
                seg_time_full = ev.time_at(op.f_ghz, duty=op.duty)
                dt = min(window_s, remaining * seg_time_full)
                frac = dt / seg_time_full
                remaining -= frac
                energy = op.power_w * dt
                self._deposit(ev, msr, op, fraction=frac, dt=dt, energy=energy)

                measured = op.power_w + (rng.normal(0.0, noise_sigma_w) if noise_sigma_w else 0.0)
                err = measured - cap
                # Integral action: push the offset up when over, bleed
                # it away when under.
                offset = float(np.clip(offset + ki * err if err > 0 else offset * 0.9, 0.0, 30.0))

                seg_t += dt
                seg_e += energy
                seg_p_dt += op.power_w * dt
                seg_f_dt += op.f_ghz * dt
                seg_duty_dt += op.duty * dt
                seg_stall_dt += ev.stall_fraction(op.f_ghz, duty=op.duty) * dt
                seg_met = seg_met and op.cap_met
                t_now += dt

                if t_now - last_sample_t >= sample_interval_s:
                    emit_sample(self._make_sample(last_snap, msr, last_sample_t, t_now))
                    last_snap = msr.snapshot()
                    last_sample_t = t_now

            if seg_t > 0:
                records.append(
                    SegmentRecord(
                        name=seg.name,
                        f_ghz=seg_f_dt / seg_t,
                        duty=seg_duty_dt / seg_t,
                        time_s=seg_t,
                        power_w=seg_p_dt / seg_t,
                        energy_j=seg_e,
                        instructions=ev.instructions,
                        llc_refs=ev.memory.llc_refs,
                        llc_misses=ev.memory.llc_misses,
                        stall_fraction=seg_stall_dt / seg_t,
                        cap_met=seg_met,
                    )
                )

        if t_now > last_sample_t:
            emit_sample(self._make_sample(last_snap, msr, last_sample_t, t_now))
        return RunResult(profile.name, cap, self.spec, records, msr, samples)

    def _make_sample(
        self, before: MsrBank, after: MsrBank, t0: float, t1: float
    ) -> PowerSample:
        dt = t1 - t0
        de = MsrBank.energy_delta_j(before.pkg_energy_status, after.pkg_energy_status)
        d_aperf = after.aperf - before.aperf
        d_mperf = after.mperf - before.mperf
        f_eff = (d_aperf / d_mperf) * self.spec.f_base if d_mperf > 0 else 0.0
        return PowerSample(
            t_s=t0,
            dt_s=dt,
            power_w=de / dt if dt > 0 else 0.0,
            f_eff_ghz=f_eff,
            instructions=after.inst_retired - before.inst_retired,
            llc_refs=after.llc_reference - before.llc_reference,
            llc_misses=after.llc_miss - before.llc_miss,
        )
