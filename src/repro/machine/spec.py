"""Machine description: the simulated processor's parameters.

The default spec models one socket of LLNL RZTopaz's nodes — an Intel
Xeon E5-2695 v4 ("Broadwell"): 18 cores, 2.1 GHz base / 2.6 GHz all-core
turbo, 120 W TDP, RAPL-cappable down to 40 W, 45 MB LLC.  Counts and
latencies come from public spec sheets; the electrical constants are
first-order calibrations chosen so the eight workloads land in the power
bands the paper reports (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MachineSpec", "BROADWELL_E5_2695V4"]


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of one simulated socket.

    Frequencies are in GHz, capacities in bytes, power in Watts,
    latencies in seconds (DRAM) or core cycles (on-chip).
    """

    name: str
    n_cores: int
    f_min: float
    f_base: float
    f_turbo: float
    f_step: float
    tdp_watts: float
    rapl_floor_watts: float

    # Voltage/frequency curve: V(f) = v_at_fmin + v_slope * (f - f_min).
    v_at_fmin: float
    v_slope: float

    # Cache hierarchy (aggregate L1/L2 across cores; LLC shared).
    l1_bytes_per_core: int
    l2_bytes_per_core: int
    llc_bytes: int
    line_bytes: int

    # Memory system.
    dram_latency_s: float
    dram_bandwidth_Bps: float
    l2_latency_cycles: float
    llc_latency_cycles: float

    # Core pipeline: cycles-per-instruction by class at full issue.
    cpi_fp: float
    cpi_simd: float
    cpi_int: float
    cpi_load: float
    cpi_store: float
    cpi_branch: float
    cpi_other: float

    # Power model constants (see repro.machine.power).
    p_uncore_idle: float          # W: fabric/IO floor
    p_leak_nominal: float         # W: total leakage at nominal voltage
    v_nominal: float              # V at which p_leak_nominal applies
    c_dyn: float                  # W per (GHz * V^2) per core at activity 1
    activity_stall: float         # effective activity stalled on L2/LLC
    activity_stall_dram: float    # activity stalled on DRAM (prefetchers,
                                  # uncore, outstanding-miss machinery hot)
    dram_stall_penalty: float     # dependent-load stall multiplier when
                                  # the working set spills out of the LLC
    p_per_llc_ref_rate: float     # W per (G refs/s) of LLC traffic
    p_per_dram_Bps: float         # W per (GB/s) of DRAM traffic

    def __post_init__(self) -> None:
        if not (0 < self.f_min <= self.f_base <= self.f_turbo):
            raise ValueError("need 0 < f_min <= f_base <= f_turbo")
        if self.rapl_floor_watts > self.tdp_watts:
            raise ValueError("RAPL floor cannot exceed TDP")
        if self.n_cores < 1:
            raise ValueError("need at least one core")

    # ------------------------------------------------------------- frequency
    @property
    def freq_bins(self) -> np.ndarray:
        """Available frequency operating points, ascending (GHz)."""
        n = int(round((self.f_turbo - self.f_min) / self.f_step)) + 1
        return np.round(self.f_min + np.arange(n) * self.f_step, 6)

    def voltage(self, f_ghz: float) -> float:
        """Operating voltage at frequency ``f_ghz`` (affine DVFS curve)."""
        return self.v_at_fmin + self.v_slope * (max(f_ghz, self.f_min) - self.f_min)

    # --------------------------------------------------------------- caches
    @property
    def l1_total_bytes(self) -> int:
        return self.l1_bytes_per_core * self.n_cores

    @property
    def l2_total_bytes(self) -> int:
        return self.l2_bytes_per_core * self.n_cores

    def cpi_vector(self) -> np.ndarray:
        """Per-class issue CPI in InstructionMix field order."""
        return np.array(
            [
                self.cpi_fp,
                self.cpi_simd,
                self.cpi_int,
                self.cpi_load,
                self.cpi_store,
                self.cpi_branch,
                self.cpi_other,
            ]
        )


#: One socket of RZTopaz (Xeon E5-2695 v4).  Cache sizes, frequencies and
#: TDP are the part's public values; electrical constants are calibrated.
BROADWELL_E5_2695V4 = MachineSpec(
    name="Intel Xeon E5-2695 v4 (Broadwell), 1 socket",
    n_cores=18,
    f_min=1.0,
    f_base=2.1,
    f_turbo=2.6,
    f_step=0.1,
    tdp_watts=120.0,
    rapl_floor_watts=40.0,
    v_at_fmin=0.80,
    v_slope=0.1875,
    l1_bytes_per_core=32 * 1024,
    l2_bytes_per_core=256 * 1024,
    llc_bytes=45 * 1024 * 1024,
    line_bytes=64,
    dram_latency_s=90e-9,
    dram_bandwidth_Bps=65e9,
    l2_latency_cycles=12.0,
    llc_latency_cycles=42.0,
    cpi_fp=0.42,
    cpi_simd=0.36,
    cpi_int=0.30,
    cpi_load=0.50,
    cpi_store=0.95,
    cpi_branch=0.45,
    cpi_other=0.28,
    p_uncore_idle=13.0,
    p_leak_nominal=17.0,
    v_nominal=1.10,
    c_dyn=1.11,
    activity_stall=0.20,
    activity_stall_dram=0.42,
    dram_stall_penalty=1.0,
    p_per_llc_ref_rate=2.0,
    p_per_dram_Bps=0.9e-9,
)
