"""Socket power model: P(frequency, activity, memory traffic).

    P = P_uncore_idle
      + P_traffic(LLC-ref rate, DRAM byte rate)          # f-insensitive
      + n_cores * P_leak(V(f))                           # voltage-driven
      + n_cores * c_dyn * activity * V(f)^2 * f          # dynamic CV^2f

The traffic term is the load-bearing design choice: when a workload is
bandwidth-bound, lowering the frequency does not lower the DRAM byte
*rate* (the run takes the same wall time), so that slice of power is
incompressible under a RAPL cap.  This is what forces the simulated
controller to crush frequency on high-traffic algorithms like isovolume
(large frequency ratio, modest slowdown — Table II's signature) while
barely touching low-traffic ones like contour.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exec_model import SegmentEval
from .spec import MachineSpec

__all__ = ["PowerBreakdown", "PowerModel"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component socket power (Watts) at one operating point."""

    uncore: float
    traffic: float
    leakage: float
    dynamic: float

    @property
    def total(self) -> float:
        return self.uncore + self.traffic + self.leakage + self.dynamic


class PowerModel:
    """Evaluates socket power for a segment at a frequency/duty point."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec

    def leakage(self, f_ghz: float) -> float:
        """Total socket leakage at the voltage for ``f_ghz`` (V² scaling)."""
        v = self.spec.voltage(f_ghz)
        return self.spec.p_leak_nominal * (v / self.spec.v_nominal) ** 2

    def breakdown(
        self, ev: SegmentEval, f_ghz: float, *, duty: float = 1.0
    ) -> PowerBreakdown:
        """Average power while the segment runs at ``f_ghz`` with ``duty``."""
        spec = self.spec
        t = ev.time_at(f_ghz, duty=duty)

        if t > 0:
            llc_ref_rate_g = ev.memory.llc_refs / t / 1e9      # G refs / s
            dram_rate = ev.memory.dram_bytes / t               # B / s
        else:
            llc_ref_rate_g = 0.0
            dram_rate = 0.0
        p_traffic = (
            spec.p_per_llc_ref_rate * llc_ref_rate_g + spec.p_per_dram_Bps * dram_rate
        )

        # Effective switching activity.  Core time splits into issue
        # cycles (mix activity), latency-stall cycles (near-idle — this
        # is what makes the study's low-IPC algorithms *low-power*), and
        # DRAM-stall time (near-idle); duty-cycled time is gated.
        dram_stall = ev.stall_fraction(f_ghz, duty=duty)
        issue_frac = ev.issue_fraction
        stall_alpha = (
            spec.activity_stall_dram * ev.stall_hot_fraction
            + spec.activity_stall * (1.0 - ev.stall_hot_fraction)
        )
        alpha_core = ev.activity_exec * issue_frac + stall_alpha * (1.0 - issue_frac)
        alpha = (alpha_core * (1.0 - dram_stall) + spec.activity_stall * dram_stall) * duty

        v = spec.voltage(f_ghz)
        p_dyn = spec.n_cores * spec.c_dyn * alpha * v * v * f_ghz

        return PowerBreakdown(
            uncore=spec.p_uncore_idle,
            traffic=p_traffic,
            leakage=self.leakage(f_ghz),
            dynamic=p_dyn,
        )

    def power(self, ev: SegmentEval, f_ghz: float, *, duty: float = 1.0) -> float:
        """Total socket Watts for the segment at the operating point."""
        return self.breakdown(ev, f_ghz, duty=duty).total
