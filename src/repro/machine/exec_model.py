"""Execution-time model: segment + frequency → seconds and cycles.

The model is the standard *leading loads* decomposition used throughout
the power-capping literature (and implicit in the paper's analysis):

    T(f) = C_core / f  +  T_mem

* ``C_core`` — cycles the cores need: issue cycles from the instruction
  mix plus on-chip (L2/LLC) hit latency.  These scale with frequency,
  so compute-bound work slows proportionally when RAPL lowers *f*.
* ``T_mem`` — DRAM time in *seconds*: the larger of the exposed-latency
  term (misses × latency / MLP) and the bandwidth term (bytes / BW).
  Frequency-independent, which is exactly why the paper's data-bound
  algorithms ride out deep power caps unharmed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload import AccessPattern, WorkSegment
from .cache import CacheModel, MemoryBehavior
from .spec import MachineSpec

__all__ = ["SegmentEval", "ExecutionModel"]

# Switching-activity weight per instruction class (InstructionMix order:
# fp, simd, int, load, store, branch, other).  SIMD units toggle the most
# silicon; stalled/light ops the least.
_ACTIVITY_WEIGHTS = np.array([1.00, 1.30, 0.60, 0.70, 0.70, 0.50, 0.50])

# How much of the on-chip (L2/LLC) hit latency the out-of-order window
# hides, by access pattern: prefetched streams overlap well; dependent
# gathers and pointer chases barely at all.
_ONCHIP_OVERLAP = {
    AccessPattern.STREAMING: 6.0,
    AccessPattern.STRIDED: 3.0,
    AccessPattern.GATHER: 1.6,
    AccessPattern.RANDOM: 1.2,
}


@dataclass(frozen=True)
class SegmentEval:
    """Frequency-independent evaluation of one segment on one machine."""

    segment: WorkSegment
    memory: MemoryBehavior
    issue_cycles: float         # per-core cycles issuing instructions
    latency_cycles: float       # per-core stall cycles (on-chip + dependent)
    stall_hot_fraction: float   # share of latency cycles resolving from DRAM
    t_mem_s: float              # DRAM seconds (frequency-independent)
    activity_exec: float        # switching activity while issuing
    instructions: float         # total retired instructions

    @property
    def core_cycles(self) -> float:
        """Cycles on the critical core path (scale with frequency)."""
        return self.issue_cycles + self.latency_cycles

    @property
    def issue_fraction(self) -> float:
        """Share of core cycles doing real work (vs. latency stalls)."""
        c = self.core_cycles
        return self.issue_cycles / c if c > 0 else 0.0

    def time_at(self, f_ghz: float, *, duty: float = 1.0) -> float:
        """Execution time in seconds at frequency ``f_ghz`` (GHz).

        ``duty`` < 1 models RAPL clock-throttling (T-states): the core
        pipeline is gated for (1 - duty) of the time.
        """
        if f_ghz <= 0:
            raise ValueError("frequency must be positive")
        if not (0 < duty <= 1.0):
            raise ValueError("duty must be in (0, 1]")
        return self.core_cycles / (f_ghz * 1e9 * duty) + self.t_mem_s

    def stall_fraction(self, f_ghz: float, *, duty: float = 1.0) -> float:
        """Fraction of the segment's time spent waiting on DRAM."""
        t = self.time_at(f_ghz, duty=duty)
        return self.t_mem_s / t if t > 0 else 0.0


class ExecutionModel:
    """Evaluates segments against a :class:`MachineSpec`."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.cache = CacheModel(spec)

    def evaluate(self, segment: WorkSegment) -> SegmentEval:
        spec = self.spec
        memory = self.cache.analyze(segment)

        counts = np.array(
            [
                segment.mix.fp,
                segment.mix.simd,
                segment.mix.int_alu,
                segment.mix.load,
                segment.mix.store,
                segment.mix.branch,
                segment.mix.other,
            ]
        )
        total_instr = float(counts.sum())
        effective_cores = spec.n_cores * segment.parallel_efficiency

        # Issue cycles from the mix (aggregate, then spread over cores).
        issue_cycles = float(counts @ spec.cpi_vector()) / effective_cores

        # Latency cycles: on-chip hit latency partially hidden by the
        # OoO window, plus the segment's explicit dependent-load stalls.
        overlap = _ONCHIP_OVERLAP[segment.pattern]
        # Prefetch-converted "hits" already cost DRAM time (t_mem below),
        # so only genuine cache hits incur on-chip latency here.
        true_llc_hits = memory.llc_hits - memory.prefetched_lines
        onchip_cycles = (
            memory.l2_hits * spec.l2_latency_cycles
            + true_llc_hits * spec.llc_latency_cycles
        ) / (effective_cores * overlap)
        # Dependent-load stalls resolve from the LLC while the working
        # set fits; beyond LLC capacity they resolve from DRAM — hotter
        # (prefetch/uncore machinery active; dram_stall_penalty can also
        # lengthen them), which is what pushes the paper's cell-centered
        # algorithms to throttle at higher caps on 256^3 inputs
        # (Table III) while their measured IPC keeps rising (Fig. 4).
        spills = segment.working_set_bytes > spec.llc_bytes
        penalty = spec.dram_stall_penalty if spills else 1.0
        dep_cycles = segment.extra_stall_cycles * penalty / effective_cores
        latency_cycles = onchip_cycles + dep_cycles
        stall_hot_fraction = dep_cycles / latency_cycles if (spills and latency_cycles > 0) else 0.0

        # DRAM time: exposed latency vs. bandwidth, whichever binds.
        t_latency = (
            memory.dram_lines * spec.dram_latency_s / (segment.mlp * effective_cores)
        )
        t_bandwidth = memory.dram_bytes / spec.dram_bandwidth_Bps
        t_mem = max(t_latency, t_bandwidth)

        total = counts.sum()
        if total > 0:
            activity = float(counts @ _ACTIVITY_WEIGHTS) / total
        else:
            activity = 0.0

        return SegmentEval(
            segment=segment,
            memory=memory,
            issue_cycles=issue_cycles,
            latency_cycles=latency_cycles,
            stall_hot_fraction=stall_hot_fraction,
            t_mem_s=t_mem,
            activity_exec=activity,
            instructions=total_instr,
        )
