"""Cache-hierarchy model: turn a segment's footprint into miss counts.

Produces the two programmable counters the paper samples —
``LONG_LAT_CACHE.REF`` (references that reach the LLC, i.e. L2 misses)
and ``LONG_LAT_CACHE.MISS`` (LLC misses that go to DRAM) — plus the
on-chip hit counts the execution model charges latency for.

Two regimes, selected by the segment's access pattern:

* **Sweep model** (STREAMING / STRIDED): the working set is swept
  ``reuse_passes`` times.  The first pass is cold; later passes hit in
  the smallest level that holds the whole set.  This captures the
  LLC-capacity cliff between the paper's 128³ datasets (16 MB, LLC
  resident across a contour's 10 isovalue sweeps) and 256³ (134 MB,
  streams from DRAM every pass).
* **Probabilistic model** (GATHER / RANDOM): each line-granular
  reference hits a level with probability ``capacity / working_set``
  (clamped to 1) — the standard fractional-LRU approximation for
  data-dependent access such as BVH traversal or trilinear sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload import AccessPattern, WorkSegment
from .spec import MachineSpec

__all__ = ["MemoryBehavior", "CacheModel"]

# Traffic amplification: extra line-granular traffic per useful byte,
# relative to a perfect unit-stride sweep.
_AMPLIFICATION = {
    AccessPattern.STREAMING: 1.0,
    AccessPattern.STRIDED: 1.25,
    AccessPattern.GATHER: 1.6,
    AccessPattern.RANDOM: 3.5,
}

# Hardware-prefetcher effectiveness: the fraction of would-be demand LLC
# misses whose line arrives before the demand access.  Prefetched lines
# still cost DRAM bandwidth/latency budget but count as *hits* in the
# LONG_LAT_CACHE demand counters the paper samples.
_PREFETCH = {
    AccessPattern.STREAMING: 0.70,
    AccessPattern.STRIDED: 0.50,
    AccessPattern.GATHER: 0.20,
    AccessPattern.RANDOM: 0.0,
}


@dataclass(frozen=True)
class MemoryBehavior:
    """Line-granular memory traffic of one segment, by level.

    ``llc_refs``/``llc_misses`` are the *demand* counters the study's
    harness samples (LONG_LAT_CACHE.REF/MISS) — the prefetcher converts
    a pattern-dependent share of misses into hits.  ``dram_lines`` is
    the full line traffic that actually reaches DRAM (demand +
    prefetch), which is what costs time and power.
    """

    l1_misses: float       # references that leave L1
    l2_hits: float         # of those, satisfied by L2
    llc_refs: float        # LONG_LAT_CACHE.REF: references reaching the LLC
    llc_hits: float        # of those, satisfied by the LLC (incl. prefetched)
    llc_misses: float      # LONG_LAT_CACHE.MISS: demand misses to DRAM
    dram_lines: float      # lines actually fetched from DRAM
    dram_bytes: float      # total DRAM traffic (reads + write-backs)
    prefetched_lines: float = 0.0  # demand misses converted to hits by HW prefetch

    def __post_init__(self) -> None:
        for name in ("l1_misses", "l2_hits", "llc_refs", "llc_hits", "llc_misses", "dram_lines"):
            if getattr(self, name) < -1e-9:
                raise ValueError(f"{name} must be non-negative")

    @property
    def llc_miss_rate(self) -> float:
        """The paper's LLC miss-rate metric: MISS / REF."""
        return self.llc_misses / self.llc_refs if self.llc_refs > 0 else 0.0


class CacheModel:
    """Maps a :class:`~repro.workload.WorkSegment` to its memory behavior."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec

    def analyze(self, segment: WorkSegment) -> MemoryBehavior:
        spec = self.spec
        amp = _AMPLIFICATION[segment.pattern]
        total_lines = segment.total_bytes * amp / spec.line_bytes
        if total_lines <= 0:
            return MemoryBehavior(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ws = max(segment.working_set_bytes, 1.0)

        if segment.pattern in (AccessPattern.STREAMING, AccessPattern.STRIDED):
            behavior = self._sweep(segment, total_lines, ws)
        else:
            behavior = self._probabilistic(total_lines, ws)
        return self._apply_prefetch(behavior, segment.pattern)

    def _apply_prefetch(self, b: MemoryBehavior, pattern: AccessPattern) -> MemoryBehavior:
        """Convert prefetched demand misses into demand hits (counters
        only — DRAM traffic is unchanged)."""
        pe = _PREFETCH[pattern]
        if pe <= 0 or b.llc_misses <= 0:
            return b
        prefetched = b.llc_misses * pe
        return MemoryBehavior(
            l1_misses=b.l1_misses,
            l2_hits=b.l2_hits,
            llc_refs=b.llc_refs,
            llc_hits=b.llc_hits + prefetched,
            llc_misses=b.llc_misses - prefetched,
            dram_lines=b.dram_lines,
            dram_bytes=b.dram_bytes,
            prefetched_lines=prefetched,
        )

    # ------------------------------------------------------------------ sweep
    def _sweep(self, segment: WorkSegment, total_lines: float, ws: float) -> MemoryBehavior:
        spec = self.spec
        passes = segment.reuse_passes
        per_pass = total_lines / passes
        warm = passes - 1.0

        # Cold pass misses everywhere.
        l1_misses = per_pass
        llc_refs = per_pass
        llc_misses = per_pass

        # Warm passes hit in the smallest level that holds the set.
        if warm > 0:
            if ws <= spec.l1_total_bytes:
                pass  # later passes never leave L1
            elif ws <= spec.l2_total_bytes:
                l1_misses += warm * per_pass  # L2 hits; never reach LLC
            elif ws <= spec.llc_bytes:
                l1_misses += warm * per_pass
                llc_refs += warm * per_pass  # LLC hits
            else:
                l1_misses += warm * per_pass
                llc_refs += warm * per_pass
                llc_misses += warm * per_pass  # stream from DRAM every pass

        l2_hits = l1_misses - llc_refs
        llc_hits = llc_refs - llc_misses
        dram_lines = llc_misses
        dram_bytes = dram_lines * spec.line_bytes
        return MemoryBehavior(
            l1_misses, l2_hits, llc_refs, llc_hits, llc_misses, dram_lines, dram_bytes
        )

    # -------------------------------------------------------------- random
    def _probabilistic(self, total_lines: float, ws: float) -> MemoryBehavior:
        spec = self.spec
        p_l1 = min(1.0, spec.l1_total_bytes / ws)
        p_l2 = min(1.0, spec.l2_total_bytes / ws)
        p_llc = min(1.0, spec.llc_bytes / ws)

        l1_misses = total_lines * (1.0 - p_l1)
        llc_refs = l1_misses * (1.0 - p_l2)
        llc_misses = llc_refs * (1.0 - p_llc)
        l2_hits = l1_misses - llc_refs
        llc_hits = llc_refs - llc_misses
        dram_lines = llc_misses
        dram_bytes = dram_lines * spec.line_bytes
        return MemoryBehavior(
            l1_misses, l2_hits, llc_refs, llc_hits, llc_misses, dram_lines, dram_bytes
        )
