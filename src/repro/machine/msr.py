"""MSR-style counter registers, mirroring the msr-safe interface.

The paper reads its measurements through LLNL's ``msr-safe`` driver:
64-bit model-specific registers for APERF/MPERF, fixed counters, and the
32-bit-wrapping RAPL package-energy status register.  The simulator
updates an :class:`MsrBank` so the sampling layer can consume readings
exactly the way the paper's harness does — including handling the energy
register's wraparound, which happens every few minutes at full power on
real Broadwell parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MsrBank", "ENERGY_UNIT_J", "ENERGY_WRAP"]

#: Intel RAPL energy status unit for this family: 61 microjoules.
ENERGY_UNIT_J = 6.103515625e-05  # = 1 / 2**14 J

#: The package-energy register is 32 bits of those units.
ENERGY_WRAP = 2**32


@dataclass
class MsrBank:
    """The registers the study samples, with hardware-faithful widths.

    All counters monotonically increase; the energy register wraps at
    32 bits like the real ``MSR_PKG_ENERGY_STATUS``.
    """

    aperf: float = 0.0                 # actual cycles (64-bit, never wraps here)
    mperf: float = 0.0                 # reference (TSC-rate) cycles
    inst_retired: float = 0.0          # INST_RETIRED.ANY
    clk_unhalted: float = 0.0          # CPU_CLK_UNHALTED.REF_TSC
    llc_reference: float = 0.0         # LONG_LAT_CACHE.REF
    llc_miss: float = 0.0              # LONG_LAT_CACHE.MISS
    _energy_j: float = field(default=0.0, repr=False)

    def deposit_energy(self, joules: float) -> None:
        """Accumulate energy into the (wrapping) package register."""
        if joules < 0:
            raise ValueError("energy must be non-negative")
        self._energy_j += joules

    @property
    def pkg_energy_status(self) -> int:
        """Raw 32-bit register value in 61 µJ units (wraps like hardware)."""
        return int(self._energy_j / ENERGY_UNIT_J) % ENERGY_WRAP

    @property
    def total_energy_j(self) -> float:
        """Full-precision energy (what a wrap-aware reader reconstructs)."""
        return self._energy_j

    @staticmethod
    def energy_delta_j(status_before: int, status_after: int) -> float:
        """Joules between two raw register reads, wrap-corrected.

        Valid as long as fewer than one full wrap (~262 kJ) elapsed
        between reads — guaranteed by the paper's 100 ms sampling.
        """
        raw = (status_after - status_before) % ENERGY_WRAP
        return raw * ENERGY_UNIT_J

    def effective_frequency_ghz(self, f_base_ghz: float) -> float:
        """The paper's effective-frequency metric: APERF/MPERF × base."""
        if self.mperf <= 0:
            return 0.0
        return (self.aperf / self.mperf) * f_base_ghz

    def snapshot(self) -> "MsrBank":
        """An independent copy (for delta computations by samplers)."""
        bank = MsrBank(
            aperf=self.aperf,
            mperf=self.mperf,
            inst_retired=self.inst_retired,
            clk_unhalted=self.clk_unhalted,
            llc_reference=self.llc_reference,
            llc_miss=self.llc_miss,
        )
        bank._energy_j = self._energy_j
        return bank
