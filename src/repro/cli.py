"""Command-line interface: regenerate the paper's results from a shell.

    python -m repro table1              # Table I (contour sweep)
    python -m repro table2              # Table II (all algorithms @128^3)
    python -m repro table3              # Table III (@256^3)
    python -m repro figures             # Figs. 2-6 series summary
    python -m repro classify            # class + recommended cap per algorithm
    python -m repro all --csv results/  # everything, with CSV artifacts

``--max-size`` caps dataset sizes (like REPRO_MAX_SIZE); ``--cycles``
overrides the per-measurement visualization cycle count.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .core import (
    classify_result,
    figure2_series,
    figure3_series,
    ipc_by_size_series,
    recommend_cap,
    render_slowdown_table,
    render_table1,
)
from .core.runner import DEFAULT_VIZ_CYCLES
from .core.study import ALGORITHM_NAMES
from .harness import ExperimentHarness, effective_sizes, result_to_csv, series_to_csv

__all__ = ["main"]


def _csv_dir(args) -> Path | None:
    if args.csv is None:
        return None
    path = Path(args.csv)
    path.mkdir(parents=True, exist_ok=True)
    return path


def cmd_table1(harness: ExperimentHarness, args) -> None:
    result = harness.table1()
    size = effective_sizes((128,))[0]
    print(render_table1(result, algorithm="contour", size=size))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(result, d / "table1.csv")


def cmd_table2(harness: ExperimentHarness, args) -> None:
    result = harness.table2()
    size = effective_sizes((128,))[0]
    print(render_slowdown_table(result, size=size))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(result, d / "table2.csv")


def cmd_table3(harness: ExperimentHarness, args) -> None:
    size = effective_sizes((256,))[0]
    result = harness.table3()
    print(render_slowdown_table(result, size=size))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(result, d / "table3.csv")


def cmd_figures(harness: ExperimentHarness, args) -> None:
    size = effective_sizes((128,))[0]
    p2 = harness.table2()
    fig2 = figure2_series(p2, size=size)
    print(f"Fig 2 (at {size}^3, 120W):")
    print(f"{'alg':>10s} {'f(GHz)':>8s} {'IPC':>6s} {'miss':>6s}")
    for alg in ALGORITHM_NAMES:
        f = fig2["frequency"][alg].y[-1]
        i = fig2["ipc"][alg].y[-1]
        m = fig2["llc_miss_rate"][alg].y[-1]
        print(f"{alg:>10s} {f:>8.2f} {i:>6.2f} {m:>6.2f}")

    fig3 = figure3_series(p2, size=size)
    print("\nFig 3 (elements/s at 120W, millions):")
    for alg, s in fig3.items():
        print(f"{alg:>10s} {s.y[-1] / 1e6:>8.2f}")

    p3 = harness.phase3()
    sizes = effective_sizes()
    print("\nFigs 4-6 (IPC at 120W by size):")
    print(f"{'alg':>10s} " + " ".join(f"{s:>7d}" for s in sizes))
    for alg in ALGORITHM_NAMES:
        series = ipc_by_size_series(p3, algorithm=alg)
        print(f"{alg:>10s} " + " ".join(f"{series[s].y[-1]:>7.2f}" for s in sizes))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(p3, d / "phase3.csv")
        series_to_csv(fig3, d / "fig3.csv")


def cmd_classify(harness: ExperimentHarness, args) -> None:
    size = effective_sizes((128,))[0]
    result = harness.table2()
    classes = classify_result(result, size=size)
    print(f"{'algorithm':>10s} {'class':>18s} {'draw':>7s} {'rec cap':>8s}")
    for alg in ALGORITHM_NAMES:
        c = classes[alg]
        rec = recommend_cap(result.select(algorithm=alg, size=size))
        print(f"{alg:>10s} {c.power_class.value:>18s} {c.natural_power_w:>6.1f}W {rec.cap_w:>7.0f}W")


_COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "figures": cmd_figures,
    "classify": cmd_classify,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Power and Performance Tradeoffs for Visualization Algorithms' (IPDPS 2019)",
    )
    parser.add_argument("command", choices=[*_COMMANDS, "all"])
    parser.add_argument("--max-size", type=int, default=None,
                        help="cap dataset sizes (e.g. 64 for a smoke run)")
    parser.add_argument("--cycles", type=int, default=DEFAULT_VIZ_CYCLES,
                        help="visualization cycles per measurement")
    parser.add_argument("--csv", default=None, metavar="DIR",
                        help="also write CSV artifacts to DIR")
    parser.add_argument("--cache", default=".cache/counts.pkl",
                        help="op-ledger cache path ('' to disable)")
    args = parser.parse_args(argv)

    if args.max_size is not None:
        os.environ["REPRO_MAX_SIZE"] = str(args.max_size)

    harness = ExperimentHarness(args.cache or None, n_cycles=args.cycles)
    commands = list(_COMMANDS) if args.command == "all" else [args.command]
    for i, name in enumerate(commands):
        if i:
            print("\n" + "=" * 72 + "\n")
        _COMMANDS[name](harness, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
