"""Command-line interface: regenerate the paper's results from a shell.

    python -m repro table1              # Table I (contour sweep)
    python -m repro table2              # Table II (all algorithms @128^3)
    python -m repro table3              # Table III (@256^3)
    python -m repro figures             # Figs. 2-6 series summary
    python -m repro classify            # class + recommended cap per algorithm
    python -m repro all --csv results/  # everything, with CSV artifacts
    python -m repro sweep phase3 --workers 8 --store sweep.jsonl
    python -m repro sweep phase1 --trace sweep.trace.jsonl --samples
    python -m repro sweep phase1 --governor step:100=0.7:200=0.5 \\
        --signal-trace price.jsonl            # governed time-varying caps
    python -m repro advise contour 128 --cap 60          # price one query
    python -m repro advise --serve < queries.jsonl       # JSONL query loop
    python -m repro chaos phase1 --plan default --workers 4
    python -m repro serve .cache/serve --workers 2       # supervised daemon
    python -m repro jobs --submit phase1 --report        # enqueue + inspect
    python -m repro jobs < requests.jsonl                # JSONL job protocol
    python -m repro chaos --service                      # daemon-layer drill
    python -m repro chaos --governor --control duty      # signal-feed drill
    python -m repro doctor .cache/sweep-phase1.jsonl
    python -m repro doctor --lint                     # audit the source too
    python -m repro trace sweep.trace.jsonl
    python -m repro metrics sweep.metrics.json --format prom
    python -m repro lint --stats                      # static-analysis gate
    python -m repro bench --trend --check             # kernel perf trajectory

``sweep`` runs a phase grid through the parallel engine with a
resumable result store: kill it mid-run and re-invoke with the same
``--store`` and it completes only the missing points.  ``--max-size``
caps dataset sizes (like REPRO_MAX_SIZE); ``--cycles`` overrides the
per-measurement visualization cycle count.  ``--governor`` replaces the
static cap grid with the caps a signal-driven power policy would
command over a ``--signal-trace`` (see docs/governors.md).

``chaos`` re-runs a sweep under a named fault plan (worker crashes,
sensor dropout, a torn store tail, ...) and reports survival; ``doctor``
audits an existing store against the physical invariants and can
quarantine violators.  See docs/robustness.md.

``serve`` runs the crash-safe sweep daemon over a WAL-backed spool:
``kill -9`` it and a restart replays the queue, reclaims orphaned
leases, and resumes every study bitwise from its store.  ``jobs`` is
the client — one-shot submit/status/cancel/report flags, or a hardened
JSONL request loop on stdin.  ``chaos --service`` drills that contract
(worker crashes mid-job, heartbeat stalls, duplicate delivery, a torn
WAL tail) and exits non-zero if a job is lost or a byte differs.

``trace`` and ``metrics`` read back the telemetry layer's artifacts —
per-phase span breakdowns and counter/gauge/histogram dumps (JSON or
Prometheus text).  See docs/observability.md.

``lint`` runs the contract-aware static-analysis gate (atomic writes,
isclose cap matching, pickle ban, layering, span balance, unit suffixes,
locked mutation) and exits non-zero on any new finding.  See
docs/static_analysis.md.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from . import api
from .core import (
    classify_result,
    figure2_series,
    figure3_series,
    ipc_by_size_series,
    recommend_cap,
    render_slowdown_table,
    render_table1,
)
from .core.runner import DEFAULT_VIZ_CYCLES
from .core.study import ALGORITHM_NAMES
from .machine.presets import ALL_PRESETS
from .harness import DEFAULT_CACHE_PATH, TableHarness, effective_sizes, result_to_csv, series_to_csv

__all__ = ["main"]

_EPILOG = """\
environment variables:
  REPRO_MAX_SIZE   integer cap on dataset sizes in cells per axis
                   (e.g. REPRO_MAX_SIZE=64 smoke-tests every command
                   without the 256^3 extractions; --max-size sets it).
                   Non-integer values are rejected with an error.

examples:
  python -m repro table1
  python -m repro all --csv results/
  python -m repro sweep phase3 --workers 8 --store .cache/phase3.jsonl
"""


def _csv_dir(args) -> Path | None:
    if args.csv is None:
        return None
    path = Path(args.csv)
    path.mkdir(parents=True, exist_ok=True)
    return path


def cmd_table1(harness: TableHarness, args) -> None:
    result = harness.table1()
    size = effective_sizes((128,))[0]
    print(render_table1(result, algorithm="contour", size=size))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(result, d / "table1.csv")


def cmd_table2(harness: TableHarness, args) -> None:
    result = harness.table2()
    size = effective_sizes((128,))[0]
    print(render_slowdown_table(result, size=size))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(result, d / "table2.csv")


def cmd_table3(harness: TableHarness, args) -> None:
    size = effective_sizes((256,))[0]
    result = harness.table3()
    print(render_slowdown_table(result, size=size))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(result, d / "table3.csv")


def cmd_figures(harness: TableHarness, args) -> None:
    size = effective_sizes((128,))[0]
    p2 = harness.table2()
    fig2 = figure2_series(p2, size=size)
    print(f"Fig 2 (at {size}^3, 120W):")
    print(f"{'alg':>10s} {'f(GHz)':>8s} {'IPC':>6s} {'miss':>6s}")
    for alg in ALGORITHM_NAMES:
        f = fig2["frequency"][alg].y[-1]
        i = fig2["ipc"][alg].y[-1]
        m = fig2["llc_miss_rate"][alg].y[-1]
        print(f"{alg:>10s} {f:>8.2f} {i:>6.2f} {m:>6.2f}")

    fig3 = figure3_series(p2, size=size)
    print("\nFig 3 (elements/s at 120W, millions):")
    for alg, s in fig3.items():
        print(f"{alg:>10s} {s.y[-1] / 1e6:>8.2f}")

    p3 = harness.phase3()
    sizes = effective_sizes()
    print("\nFigs 4-6 (IPC at 120W by size):")
    print(f"{'alg':>10s} " + " ".join(f"{s:>7d}" for s in sizes))
    for alg in ALGORITHM_NAMES:
        series = ipc_by_size_series(p3, algorithm=alg)
        print(f"{alg:>10s} " + " ".join(f"{series[s].y[-1]:>7.2f}" for s in sizes))
    if (d := _csv_dir(args)) is not None:
        result_to_csv(p3, d / "phase3.csv")
        series_to_csv(fig3, d / "fig3.csv")


def cmd_classify(harness: TableHarness, args) -> None:
    size = effective_sizes((128,))[0]
    result = harness.table2()
    classes = classify_result(result, size=size)
    print(f"{'algorithm':>10s} {'class':>18s} {'draw':>7s} {'rec cap':>8s}")
    for alg in ALGORITHM_NAMES:
        c = classes[alg]
        rec = recommend_cap(result.select(algorithm=alg, size=size))
        print(f"{alg:>10s} {c.power_class.value:>18s} {c.natural_power_w:>6.1f}W {rec.cap_w:>7.0f}W")


def _sweep_progress(event: dict) -> None:
    kind = event.get("kind")
    if kind == "profile-done":
        print(
            f"  [{event['completed']:>3d}/{event['total']}] profiled "
            f"{event['algorithm']}@{event['size']}^3 in {event['elapsed_s']:.2f}s",
            flush=True,
        )
    elif kind == "group-skipped":
        print(f"  [resume] {event['algorithm']}@{event['size']}^3 already complete", flush=True)
    elif kind == "serial-fallback":
        print(f"  [warn] process pool failed ({event['reason']}); continuing serially", flush=True)
    elif kind == "point-quarantined":
        print(
            f"  [quarantine] {event['algorithm']}@{event['size']}^3 {event['cap_w']:g}W "
            f"({', '.join(event['reasons'])})",
            flush=True,
        )
    elif kind == "interrupted":
        print(
            f"  [interrupt] stopping; {event['points_saved']} points safe on disk "
            f"— re-run with the same --store to resume",
            flush=True,
        )


def _governed_config(config, args):
    """Replace the static cap grid with a governed cap series."""
    import dataclasses

    from .insitu.governors import SignalTrace, governed_caps_w, parse_governor

    gov = parse_governor(args.governor)
    if args.signal_trace:
        trace = SignalTrace.from_jsonl(args.signal_trace)
    else:
        trace = SignalTrace.synthetic(
            "walk", seed=7, n=max(4 * args.epochs, 16), lo=50.0, hi=250.0
        )
    caps = governed_caps_w(
        gov,
        trace,
        ALL_PRESETS["broadwell"],
        n_epochs=args.epochs,
        epoch_s=args.epoch_s,
    )
    print(
        f"governor {gov.describe()} over trace '{trace.name}': "
        f"caps " + ", ".join(f"{c:g}W" for c in caps)
    )
    return dataclasses.replace(config, caps_w=caps)


def cmd_sweep(args) -> None:
    config = api.resolve_config(args.phase)
    if args.governor:
        config = _governed_config(config, args)
    store = args.store or str(Path(".cache") / f"sweep-{config.name}.jsonl")
    engine = api.sweep_engine(
        workers=args.workers,
        store=store,
        cache=args.cache or None,
        n_cycles=args.cycles,
        progress=_sweep_progress,
        trace=args.trace,
        samples=args.samples or None,
    )
    n_jobs = len(config.algorithms) * len(config.sizes)
    mode = "serial" if (engine.workers or 0) <= 1 else f"{engine.workers} workers"
    print(
        f"sweep {config.name}: {config.n_configurations} configurations "
        f"({n_jobs} profile jobs x {len(config.caps_w)} caps), {mode}, store={store}"
    )
    t0 = time.perf_counter()
    result = engine.run(config, resume=args.resume)
    wall = time.perf_counter() - t0
    s = engine.stats
    print(
        f"done: {len(result.points)} points in {wall:.2f}s "
        f"({len(result.points) / wall:.0f} pts/s) — "
        f"{s.profile_jobs_run} profiled, {s.profile_jobs_cached} from ledger cache, "
        f"{s.points_resumed} resumed from store, {s.retries} retries"
        + (", serial fallback" if s.fell_back_serial else "")
    )
    if args.trace:
        print(f"trace: {args.trace} (inspect with `repro trace {args.trace}`)")
    if args.samples:
        print(f"samples: {engine.sample_writer.path}")


def cmd_chaos(args) -> int:
    config = api.resolve_config(args.phase)
    if args.governor:
        if args.plan not in api.GOVERNOR_PLANS:
            print(
                f"chaos --governor: unknown governor plan {args.plan!r} "
                f"(expected one of {', '.join(sorted(api.GOVERNOR_PLANS))})",
                file=sys.stderr,
            )
            return 2
        print(
            f"governor chaos: plan '{args.plan}', governor {args.governor_spec}, "
            f"control {args.control}"
        )
        report = api.run_governor_chaos(
            plan=args.plan,
            governor=args.governor_spec,
            control=args.control,
            n_epochs=args.epochs,
        )
        print(report.render())
        return 0 if report.survived else 1
    if args.service:
        if args.plan not in api.SERVICE_PLANS:
            print(
                f"chaos --service: unknown service plan {args.plan!r} "
                f"(expected one of {', '.join(sorted(api.SERVICE_PLANS))})",
                file=sys.stderr,
            )
            return 2
        spool = args.spool or str(Path(".cache") / f"service-chaos-{config.name}")
        print(f"service chaos {config.name}: plan '{args.plan}', spool={spool}")
        report = api.run_service_chaos(
            config,
            plan=args.plan,
            spool=spool,
            n_jobs=args.jobs,
            workers=args.workers if args.workers else 2,
            lease_s=args.lease,
            n_cycles=args.cycles,
            chaos_seed=args.seed,
            trace=args.trace,
        )
        print(report.render())
        return 0 if report.survived else 1
    if args.plan not in api.PLANS:
        print(
            f"chaos: unknown fault plan {args.plan!r} "
            f"(expected one of {', '.join(sorted(api.PLANS))}; "
            "service plans need --service, governor plans --governor)",
            file=sys.stderr,
        )
        return 2
    store = args.store or str(Path(".cache") / f"chaos-{config.name}.jsonl")
    plan = api.get_plan(args.plan)
    print(
        f"chaos {config.name}: plan '{plan.name}' "
        f"(seed {args.seed if args.seed is not None else plan.seed}), store={store}"
    )
    report = api.run_chaos(
        config,
        plan=plan,
        store=store,
        workers=args.workers,
        n_cycles=args.cycles,
        chaos_seed=args.seed,
        progress=_sweep_progress if args.verbose else None,
        trace=args.trace,
    )
    print(report.render())
    return 0 if report.survived else 1


def cmd_serve(args) -> int:
    import signal

    svc = api.sweep_service(
        args.spool,
        workers=args.workers,
        lease_s=args.lease,
        poll_interval_s=args.poll,
        trace=args.trace,
    )
    sup = svc.supervisor()

    def _terminate(signum, frame):  # graceful: running studies requeue
        sup.stop()

    previous = signal.signal(signal.SIGTERM, _terminate)
    print(
        f"serve: spool={svc.spool} workers={svc.workers} "
        f"lease={svc.lease_s:.0f}s" + (" (drain)" if args.drain else "")
    )
    try:
        report = svc.run_daemon(drain=args.drain, supervisor=sup)
    except KeyboardInterrupt:
        sup.stop()
        report = svc.report()
    finally:
        signal.signal(signal.SIGTERM, previous)
    counts = report["counts"]
    print(
        f"serve: done — {counts['completed']} completed, {counts['failed']} failed, "
        f"{counts['cancelled']} cancelled, {counts['pending'] + counts['running']} open; "
        f"breaker {report['breaker']}, "
        f"{report['wal_corrupt_lines']} corrupt WAL line(s) skipped"
    )
    return 0


def cmd_jobs(args) -> int:
    import json as _json

    svc = api.sweep_service(args.spool)

    def out(doc: dict) -> None:
        print(_json.dumps(doc, sort_keys=True), flush=True)

    rc = 0
    acted = False
    for phase in args.submit or ():
        acted = True
        try:
            receipt = api.submit_study(
                phase,
                service=svc,
                n_cycles=args.cycles,
                max_retries=args.max_retries,
            )
            out({"ok": receipt.accepted, "op": "submit", **receipt.to_dict()})
            if not receipt.accepted:
                rc = 1
        except Exception as exc:
            out({"ok": False, "op": "submit", "error": str(exc)})
            rc = 1
    for job_id in args.status or ():
        acted = True
        try:
            out({"ok": True, "op": "status", **svc.status(job_id)})
        except KeyError as exc:
            out({"ok": False, "op": "status", "error": str(exc)})
            rc = 1
    for job_id in args.cancel or ():
        acted = True
        try:
            out({"ok": True, "op": "cancel", **svc.cancel(job_id)})
        except KeyError as exc:
            out({"ok": False, "op": "cancel", "error": str(exc)})
            rc = 1
    if args.report:
        acted = True
        out({"ok": True, "op": "report", **svc.report()})
    if acted:
        return rc

    # No one-shot action: speak the JSONL request/response protocol on
    # stdin, hardened the same way as `repro advise --serve` (bounded
    # line length, malformed input answered instead of fatal).
    from .obs.metrics import get_registry

    max_line = 64 * 1024
    reg = get_registry()
    while True:
        raw = sys.stdin.readline(max_line + 1)
        if raw == "":
            break
        if len(raw) > max_line:
            while True:
                chunk = sys.stdin.readline(max_line)
                if chunk == "" or chunk.endswith("\n"):
                    break
            reg.counter(
                "repro_jobs_errors_total", "jobs serve-loop failures", reason="oversized"
            ).inc()
            out({"ok": False, "error": f"request line exceeds {max_line} bytes"})
            continue
        line = raw.strip()
        if not line:
            continue
        req_id = None
        try:
            doc = _json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("jobs request must be a JSON object")
            req_id = doc.pop("id", None)
            op = doc.pop("op", None)
            if op == "submit":
                study = doc.pop("study", "phase1")
                n_cycles = int(doc.pop("n_cycles", args.cycles))
                max_retries = int(doc.pop("max_retries", args.max_retries))
                if doc:
                    raise ValueError(f"unknown submit field(s) {sorted(doc)}")
                receipt = api.submit_study(
                    study, service=svc, n_cycles=n_cycles, max_retries=max_retries
                )
                answer = {"ok": receipt.accepted, "op": op, **receipt.to_dict()}
            elif op == "status":
                answer = {"ok": True, "op": op, **svc.status(str(doc["job_id"]))}
            elif op == "cancel":
                answer = {"ok": True, "op": op, **svc.cancel(str(doc["job_id"]))}
            elif op == "report":
                answer = {"ok": True, "op": op, **svc.report()}
            else:
                raise ValueError(
                    f"unknown op {op!r}; expected submit/status/cancel/report"
                )
        except Exception as exc:  # protocol boundary: report, keep serving
            reg.counter(
                "repro_jobs_errors_total", "jobs serve-loop failures", reason="bad-request"
            ).inc()
            answer = {"ok": False, "error": str(exc)}
        if req_id is not None:
            answer["id"] = req_id
        out(answer)
    return 0


def cmd_doctor(args) -> int:
    if args.store is None and not args.lint:
        print("doctor: nothing to check — give a store path and/or --lint", file=sys.stderr)
        return 2
    rc = 0
    if args.store is not None:
        report = api.doctor(args.store, quarantine=args.quarantine)
        print(report.render())
        rc = 0 if report.ok else 1
    if args.lint:
        from .lint import render_text

        if args.store is not None:
            print()
        lint_report = api.lint()
        print(render_text(lint_report))
        rc = max(rc, 0 if lint_report.ok else 1)
    return rc


def _git_changed_files() -> list[Path] | None:
    """Tracked-modified + untracked ``*.py`` files, or None outside git."""
    import subprocess

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None
    names: list[str] = []
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            out = subprocess.run(
                cmd, capture_output=True, text=True, check=True, cwd=top
            ).stdout
        except (OSError, subprocess.CalledProcessError):
            return None
        names.extend(out.splitlines())
    files: list[Path] = []
    seen: set[Path] = set()
    for name in names:
        p = (Path(top) / name).resolve()
        if p.suffix == ".py" and p.is_file() and p not in seen:
            seen.add(p)
            files.append(p)
    return files


def cmd_lint(args) -> int:
    from .core.atomicio import atomic_write_json
    from .lint import render_json, render_text

    only = None
    if getattr(args, "changed", False):
        only = _git_changed_files()
        if only is None:
            print("lint: --changed requires a git checkout", file=sys.stderr)
            return 2
        if not only:
            print("lint: no changed python files")
            return 0
    report = api.lint(
        args.paths or None,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        only=only,
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, stats=args.stats))
    if args.report:
        atomic_write_json(args.report, report.to_json())
    return 0 if report.ok else 1


def cmd_sanitize(args) -> int:
    from .core.atomicio import atomic_write_json
    from .lint import sanitizer

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("sanitize: give a repro subcommand to run, e.g. "
              "`repro sanitize chaos --service`", file=sys.stderr)
        return 2
    if rest[0] == "sanitize":
        print("sanitize: cannot nest sanitize", file=sys.stderr)
        return 2
    sanitizer.install()
    try:
        inner = main(rest)
    finally:
        sanitizer.uninstall()
    doc = sanitizer.report()
    if args.show or not doc["ok"]:
        print(sanitizer.render(doc))
    if args.report:
        atomic_write_json(args.report, doc)
    if not doc["ok"]:
        return 1
    return inner


def _render_advise(resp) -> str:
    lines = [
        f"{resp.algorithm}@{resp.size}^3 on {resp.machine} "
        f"({'ledger cache hit' if resp.cache_hit else 'profiled this query'}, "
        f"{resp.latency_s * 1e3:.2f} ms)",
        f"  priced cap:      {resp.cap_w:g} W",
        f"  recommended cap: {resp.recommended_cap_w:g} W "
        f"(tolerance {resp.tolerance:.0%}, saves {resp.power_saved_w:.1f} W)",
        f"  predicted: {resp.predicted_time_s:.3f} s, "
        f"{resp.predicted_energy_j:.1f} J, {resp.predicted_power_w:.1f} W, "
        f"tratio {resp.predicted_tratio:.3f}",
    ]
    return "\n".join(lines)


def cmd_advise(args) -> int:
    import json as _json

    advisors: dict[str, object] = {}

    def advisor_for(machine: str):
        if machine not in advisors:
            advisors[machine] = api.advisor(
                machine=machine, cache=args.cache or None, n_cycles=args.cycles
            )
        return advisors[machine]

    if args.serve:
        # One JSON request per stdin line, one JSON response line back
        # (see docs/pricing_service.md for the protocol).  An optional
        # "id" field is echoed verbatim so callers can pipeline queries.
        # The loop is a trust boundary: lines are read with a hard length
        # bound (a pathological client cannot balloon memory), an
        # oversized line is drained and answered with an error instead of
        # poisoning the next request, and every failure increments
        # repro_advise_errors_total{reason=...} — the loop itself never
        # dies on bad input.
        from .obs.metrics import get_registry

        max_line = 64 * 1024
        reg = get_registry()

        def _count_error(reason: str) -> None:
            reg.counter(
                "repro_advise_errors_total", "advise serve-loop failures", reason=reason
            ).inc()

        while True:
            raw = sys.stdin.readline(max_line + 1)
            if raw == "":
                break  # EOF
            if len(raw) > max_line:
                # Drain the remainder of this line so the next readline
                # starts at a fresh request, then report the rejection.
                while True:
                    chunk = sys.stdin.readline(max_line)
                    if chunk == "" or chunk.endswith("\n"):
                        break
                _count_error("oversized")
                out = {"ok": False, "error": f"request line exceeds {max_line} bytes"}
                print(_json.dumps(out, sort_keys=True), flush=True)
                continue
            line = raw.strip()
            if not line:
                continue
            req_id = None
            try:
                try:
                    doc = _json.loads(line)
                except ValueError as exc:
                    _count_error("invalid-json")
                    raise ValueError(f"invalid JSON: {exc}") from exc
                if not isinstance(doc, dict):
                    _count_error("bad-request")
                    raise ValueError("advise request must be a JSON object")
                req_id = doc.pop("id", None)
                try:
                    request = api.AdviseRequest.from_dict(doc)
                except (KeyError, TypeError, ValueError):
                    _count_error("bad-request")
                    raise
                try:
                    resp = api.advise(request, advisor=advisor_for(request.machine))
                except Exception:
                    _count_error("internal")
                    raise
                out = {"ok": True, **resp.to_dict()}
            except Exception as exc:  # protocol boundary: report, keep serving
                out = {"ok": False, "error": str(exc)}
            if req_id is not None:
                out["id"] = req_id
            print(_json.dumps(out, sort_keys=True), flush=True)
        return 0

    if args.algorithm is None or args.size is None:
        print("advise: need ALGORITHM and SIZE (or --serve)", file=sys.stderr)
        return 2
    request = api.AdviseRequest(
        algorithm=args.algorithm,
        size=args.size,
        cap_w=args.cap,
        tolerance=args.tolerance,
        machine=args.machine,
    )
    resp = api.advise(request, advisor=advisor_for(args.machine))
    if args.json:
        print(_json.dumps(resp.to_dict(), sort_keys=True))
    else:
        print(_render_advise(resp))
    return 0


def cmd_bench(args) -> int:
    from .core.benchtrack import BenchTracker, check_floors, format_trend, trend_rows

    try:
        tracker = BenchTracker(args.path)
    except (ValueError, OSError) as exc:
        print(f"bench: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if not len(tracker):
        print(f"bench: no entries in {tracker.path}", file=sys.stderr)
        return 2
    print(format_trend(trend_rows(tracker)))
    if args.check:
        failures = check_floors(tracker)
        for msg in failures:
            print("REGRESSION:", msg, file=sys.stderr)
        return 1 if failures else 0
    return 0


def cmd_trace(args) -> int:
    from .obs.trace import read_trace, render_summary, summarize_trace

    _, records = read_trace(args.file)
    n_events = sum(1 for r in records if r.get("kind") == "event")
    summary = summarize_trace(records, name=args.name)
    print(render_summary(summary, n_events=n_events))
    if args.events:
        for r in records:
            if r.get("kind") != "event":
                continue
            attrs = r.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            print(f"  [{r.get('t_s', 0.0):9.3f}s] {r.get('name')} {detail}".rstrip())
    return 0


def cmd_metrics(args) -> int:
    from .obs.metrics import load_metrics

    registry = load_metrics(args.file)
    if args.format == "prom":
        print(registry.to_prometheus(), end="")
    else:
        import json as _json

        print(_json.dumps(registry.to_json(), indent=1, sort_keys=True))
    return 0


_COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "figures": cmd_figures,
    "classify": cmd_classify,
}


def _build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--max-size", type=int, default=None,
                        help="cap dataset sizes (e.g. 64 for a smoke run; sets REPRO_MAX_SIZE)")
    common.add_argument("--cycles", type=int, default=DEFAULT_VIZ_CYCLES,
                        help="visualization cycles per measurement")
    common.add_argument("--csv", default=None, metavar="DIR",
                        help="also write CSV artifacts to DIR")
    common.add_argument("--cache", default=DEFAULT_CACHE_PATH,
                        help="op-ledger cache path ('' to disable)")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Power and Performance Tradeoffs for Visualization Algorithms' (IPDPS 2019)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")
    for name, help_text in [
        ("table1", "Table I: contour sweep"),
        ("table2", "Table II: all algorithms @128^3"),
        ("table3", "Table III: all algorithms @256^3"),
        ("figures", "Figs. 2-6 series summary"),
        ("classify", "class + recommended cap per algorithm"),
        ("all", "every table/figure command in sequence"),
    ]:
        sub.add_parser(name, parents=[common], help=help_text)

    sweep = sub.add_parser(
        "sweep",
        parents=[common],
        help="run a phase grid through the parallel, resumable engine",
        description="Parallel sweep with a resumable JSONL result store: "
        "interrupt it and re-invoke with the same --store to complete "
        "only the missing points.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep.add_argument("phase", nargs="?", default="phase1", choices=list(api.PHASE_NAMES),
                       help="which factor grid to sweep (default: phase1)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="profile-job process count (default: CPU count; 0/1 = serial)")
    sweep.add_argument("--store", default=None, metavar="PATH",
                       help="result store path (default: .cache/sweep-<phase>.jsonl)")
    sweep.add_argument("--resume", default=True, action=argparse.BooleanOptionalAction,
                       help="resume from points already in the store (--no-resume wipes it)")
    sweep.add_argument("--trace", default=None, metavar="PATH",
                       help="write a span/event trace (JSONL; read with `repro trace`)")
    sweep.add_argument("--samples", action="store_true",
                       help="stream 100 ms power samples to <store>.samples.jsonl")
    sweep.add_argument("--governor", default=None, metavar="SPEC",
                       help="replace the cap grid with a governed cap series "
                       "(e.g. 'const:0.8', 'step:100=0.7:200=0.5', "
                       "'linear:100:500'; see docs/governors.md)")
    sweep.add_argument("--signal-trace", default=None, metavar="PATH",
                       help="signal trace JSONL driving the governor "
                       "(default: a seeded synthetic walk)")
    sweep.add_argument("--epochs", type=int, default=9, metavar="N",
                       help="control periods to sample the governed caps over "
                       "(default: 9)")
    sweep.add_argument("--epoch-s", type=float, default=1.0, metavar="S",
                       help="signal-trace seconds per control period (default: 1.0)")

    chaos = sub.add_parser(
        "chaos",
        parents=[common],
        help="run a sweep under a named fault plan and report survival",
        description="Fault-injection drill: run the grid with seeded worker "
        "crashes/hangs, sensor corruption, and store damage live, then "
        "verify every surviving point is bitwise identical to a fault-free "
        "run. Exits non-zero if the robustness contract is broken.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    chaos.add_argument("phase", nargs="?", default="phase1", choices=list(api.PHASE_NAMES),
                       help="which factor grid to sweep (default: phase1)")
    chaos.add_argument("--plan", default="default",
                       choices=sorted(
                           set(api.PLANS) | set(api.SERVICE_PLANS) | set(api.GOVERNOR_PLANS)
                       ),
                       help="named fault plan (default: 'default'; service plans "
                       "need --service, governor plans --governor)")
    chaos.add_argument("--seed", type=int, default=None, metavar="N",
                       help="re-seed the fault schedule (default: the plan's seed)")
    chaos.add_argument("--workers", type=int, default=None, metavar="N",
                       help="profile-job process count (default: CPU count; 0/1 = serial)")
    chaos.add_argument("--store", default=None, metavar="PATH",
                       help="result store path (default: .cache/chaos-<phase>.jsonl)")
    chaos.add_argument("--verbose", action="store_true",
                       help="stream per-point engine events")
    chaos.add_argument("--trace", default=None, metavar="PATH",
                       help="write a span/event trace of all five chaos phases")
    chaos.add_argument("--service", action="store_true",
                       help="drill the daemon layer instead (WAL queue, "
                       "supervision, crash/stall/duplicate faults)")
    chaos.add_argument("--spool", default=None, metavar="DIR",
                       help="service spool dir (--service; default: "
                       ".cache/service-chaos-<phase>)")
    chaos.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="studies to submit in the service drill (default: 2)")
    chaos.add_argument("--lease", type=float, default=1.0, metavar="S",
                       help="heartbeat lease in the service drill (default: 1.0)")
    chaos.add_argument("--governor", action="store_true",
                       help="drill the signal feed of a governed power policy "
                       "instead (sample dropout, step discontinuities, trace "
                       "truncation)")
    chaos.add_argument("--governor-spec", default="step:100=0.7:200=0.5",
                       metavar="SPEC",
                       help="governor under test (--governor; default: "
                       "'step:100=0.7:200=0.5')")
    chaos.add_argument("--control", default="power",
                       choices=("power", "frequency", "duty"),
                       help="control method under test (--governor; default: power)")
    chaos.add_argument("--epochs", type=int, default=10, metavar="N",
                       help="control periods per governor drill (default: 10)")

    serve = sub.add_parser(
        "serve",
        parents=[common],
        help="run the crash-safe supervised sweep daemon over a spool",
        description="Supervised daemon: replays the spool's write-ahead log, "
        "reclaims orphaned leases from any previous (crashed) generation, "
        "and drives submitted studies through bounded workers with "
        "heartbeat leases, capped retry backoff, and a circuit breaker. "
        "SIGTERM/Ctrl-C stop gracefully (running studies requeue and "
        "resume bitwise on the next start).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument("spool", nargs="?", default=api.DEFAULT_SPOOL,
                       help=f"spool directory (default: {api.DEFAULT_SPOOL})")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="supervised worker threads (default: 2)")
    serve.add_argument("--lease", type=float, default=30.0, metavar="S",
                       help="heartbeat lease duration (default: 30)")
    serve.add_argument("--poll", type=float, default=0.05, metavar="S",
                       help="control-loop poll interval (default: 0.05)")
    serve.add_argument("--drain", action="store_true",
                       help="exit once every queued job is terminal")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write a span/event trace (JSONL; read with `repro trace`)")

    jobs = sub.add_parser(
        "jobs",
        parents=[common],
        help="submit/inspect/cancel sweep-service jobs (or a JSONL loop)",
        description="Client for the sweep service spool: --submit/--status/"
        "--cancel/--report run one-shot against the WAL (no daemon needed "
        "to enqueue); with no action flags it reads one JSON request per "
        "stdin line ({\"op\": \"submit\"|\"status\"|\"cancel\"|\"report\", ...}) "
        "and writes one JSON response line, surviving malformed input.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    jobs.add_argument("spool", nargs="?", default=api.DEFAULT_SPOOL,
                      help=f"spool directory (default: {api.DEFAULT_SPOOL})")
    jobs.add_argument("--submit", action="append", metavar="PHASE",
                      choices=list(api.PHASE_NAMES),
                      help="durably enqueue one study (repeatable)")
    jobs.add_argument("--status", action="append", metavar="JOB_ID",
                      help="print one job's snapshot (repeatable)")
    jobs.add_argument("--cancel", action="append", metavar="JOB_ID",
                      help="cooperatively cancel a job (repeatable)")
    jobs.add_argument("--report", action="store_true",
                      help="print the service-wide snapshot")
    jobs.add_argument("--max-retries", type=int, default=2, metavar="N",
                      help="per-study retry budget for submissions (default: 2)")

    advise = sub.add_parser(
        "advise",
        help="price an algorithm under a cap from the ledger cache (or --serve)",
        description="Hot-path pricing queries: the first query per "
        "(algorithm, size, machine) executes the real algorithm once to "
        "record its op-count ledger; every later query reprices the cached "
        "ledger closed-form in microseconds. --serve reads one JSON request "
        "per stdin line and writes one JSON response line "
        "(see docs/pricing_service.md).",
    )
    advise.add_argument("algorithm", nargs="?", default=None, choices=list(ALGORITHM_NAMES),
                        help="visualization algorithm to price")
    advise.add_argument("size", nargs="?", type=int, default=None,
                        help="dataset size in cells per axis (e.g. 128)")
    advise.add_argument("--cap", type=float, default=None, metavar="W",
                        help="price this cap (default: the recommended cap)")
    advise.add_argument("--tolerance", type=float, default=0.10, metavar="FRAC",
                        help="slowdown tolerance for the recommendation (default: 0.10)")
    advise.add_argument("--machine", default="broadwell",
                        choices=sorted(ALL_PRESETS),
                        help="machine preset to price on (default: broadwell)")
    advise.add_argument("--cache", default=str(Path(".cache") / "advise-ledgers.json"),
                        metavar="PATH",
                        help="content-addressed ledger cache ('' to keep in memory)")
    advise.add_argument("--cycles", type=int, default=DEFAULT_VIZ_CYCLES,
                        help="visualization cycles per measurement")
    advise.add_argument("--serve", action="store_true",
                        help="JSONL loop: one JSON request per stdin line")
    advise.add_argument("--json", action="store_true",
                        help="print the single-query response as JSON")

    doctor = sub.add_parser(
        "doctor",
        help="validate an existing store against the physical invariants",
        description="Audit a sweep store: power <= cap + tolerance, runtime "
        "monotone as caps drop, rates finite and within machine bins. "
        "Exits non-zero if any point violates an invariant.",
    )
    doctor.add_argument("store", nargs="?", default=None,
                        help="store file to audit (sweep --store output)")
    doctor.add_argument("--quarantine", action="store_true",
                        help="move violating points to the *.quarantine.jsonl sidecar")
    doctor.add_argument("--lint", action="store_true",
                        help="also run the static-analysis gate over the repro package")

    bench = sub.add_parser(
        "bench",
        help="show the kernel benchmark trajectory (speedup vs floors)",
        description="Read BENCH_kernels.json and print the kernel × size "
        "trajectory table: measured seconds, pre-optimization baseline, "
        "speedup, and the acceptance floor where one exists. --check "
        "exits non-zero if any measured kernel sits below its floor "
        "(the CI regression gate). Re-measure with "
        "benchmarks/bench_kernels.py.",
    )
    bench.add_argument("--path", default="BENCH_kernels.json", metavar="PATH",
                       help="trajectory file to read (default: BENCH_kernels.json)")
    bench.add_argument("--trend", action="store_true",
                       help="print the trajectory table (the default action)")
    bench.add_argument("--check", action="store_true",
                       help="exit 1 if any measured kernel is below its speedup floor")

    trace = sub.add_parser(
        "trace",
        help="per-phase breakdown of a sweep/chaos trace file",
        description="Aggregate a telemetry trace (sweep --trace output): "
        "span counts, total/mean/max wall time, and share per phase.",
    )
    trace.add_argument("file", help="trace file (JSONL, sweep/chaos --trace output)")
    trace.add_argument("--name", default=None, metavar="SUBSTR",
                       help="only phases whose name contains SUBSTR")
    trace.add_argument("--events", action="store_true",
                       help="also list point events (retries, faults, quarantines)")

    metrics = sub.add_parser(
        "metrics",
        help="dump a sweep's metrics file (JSON or Prometheus text)",
        description="Read back a <store>.metrics.json dump written by the "
        "engine and print it as JSON or Prometheus text exposition format.",
    )
    metrics.add_argument("file", help="metrics file (<store>.metrics.json)")
    metrics.add_argument("--format", default="prom", choices=("prom", "json"),
                         help="output format (default: prom)")

    lint = sub.add_parser(
        "lint",
        help="run the contract-aware static-analysis gate (exit 1 on findings)",
        description="Machine-check the repo's coding contracts over every "
        "source file: atomic artifact writes (RPR001), isclose cap matching "
        "(RPR002), the pickle ban (RPR003), the import-layering map (RPR004), "
        "balanced trace spans (RPR005), unit-suffix consistency (RPR006), "
        "locked shared mutation (RPR007), plus the project-wide rules: "
        "cross-call unit flow (RPR008), lockset races (RPR009), durability "
        "ordering (RPR010) and blocking calls under locks (RPR011). Exits 0 "
        "when clean, 1 on any new finding, 2 on usage errors. See "
        "docs/static_analysis.md.",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: the installed repro package)")
    lint.add_argument("--format", default="text", choices=("text", "json"),
                      help="report format on stdout (default: text)")
    lint.add_argument("--stats", action="store_true",
                      help="append per-rule and per-file violation tables")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline file of grandfathered findings "
                      "(default: ./lint_baseline.json when present)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current findings")
    lint.add_argument("--report", default=None, metavar="PATH",
                      help="also write the JSON report to PATH (atomically)")
    lint.add_argument("--changed", action="store_true",
                      help="report only findings in files changed vs. git HEAD "
                      "(plus untracked); the whole project is still analysed "
                      "so cross-file rules keep their view")

    sanitize = sub.add_parser(
        "sanitize",
        help="run a repro subcommand under the runtime concurrency sanitizer",
        description="Install the lock-order/lockset sanitizer "
        "(repro.lint.sanitizer), run the given repro subcommand in-process, "
        "then report lock-order cycles and lockset races. Exits 1 when the "
        "sanitizer observed a cycle or race (regardless of the inner "
        "command's own exit code), 2 on usage errors. Equivalent to running "
        "any entry point with REPRO_SANITIZE=1, plus the report.",
    )
    sanitize.add_argument("--report", default=None, metavar="PATH",
                          help="write the sanitizer JSON report to PATH (atomically)")
    sanitize.add_argument("--show", action="store_true",
                          help="print the text report even when clean")
    sanitize.add_argument("rest", nargs=argparse.REMAINDER, metavar="command",
                          help="repro subcommand (and its arguments) to run")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if getattr(args, "max_size", None) is not None:
        os.environ["REPRO_MAX_SIZE"] = str(args.max_size)

    if args.command == "doctor":
        return cmd_doctor(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "sanitize":
        return cmd_sanitize(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "metrics":
        return cmd_metrics(args)
    if args.command == "advise":
        return cmd_advise(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "jobs":
        return cmd_jobs(args)
    if args.command == "sweep":
        cmd_sweep(args)
        return 0

    harness = api.harness(args.cache or None, n_cycles=args.cycles)
    commands = list(_COMMANDS) if args.command == "all" else [args.command]
    for i, name in enumerate(commands):
        if i:
            print("\n" + "=" * 72 + "\n")
        _COMMANDS[name](harness, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
