"""Suppression pragmas: justified, audited escape hatches.

A finding can be silenced in place::

    p.write_bytes(data)  # repro: lint-ignore[RPR001]: intentional damage under test

The justification text after the colon is *required* — an unjustified
pragma does not suppress anything and is itself reported (as
``RPR000``), as are pragmas naming unknown rules and pragmas that no
longer suppress any finding (stale suppressions otherwise outlive the
code they excused).  A pragma on its own line applies to the next line;
a trailing pragma applies to its own line.

Comments are found with :mod:`tokenize`, so pragma-shaped text inside
string literals and docstrings (like the example above) never
activates.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import PRAGMA_CODE, Finding

__all__ = ["Pragma", "scan_pragmas", "apply_pragmas"]

_PRAGMA_RE = re.compile(
    r"repro:\s*lint-ignore\[(?P<codes>[^\]]*)\]\s*(?::\s*(?P<why>\S.*?))?\s*$"
)


@dataclass
class Pragma:
    """One ``lint-ignore`` comment, bound to the line it suppresses."""

    comment_line: int  # where the comment physically sits (1-based)
    target_line: int  # the line whose findings it suppresses
    codes: tuple[str, ...]
    justification: str
    used: bool = field(default=False, compare=False)


def scan_pragmas(source: str) -> list[Pragma]:
    """All ``lint-ignore`` pragmas in ``source``, in file order."""
    out: list[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out  # unparseable files already fail lint with a parse finding
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _PRAGMA_RE.search(tok.string)
        if m is None:
            continue
        codes = tuple(c.strip() for c in m.group("codes").split(",") if c.strip())
        standalone = tok.line[: tok.start[1]].strip() == ""
        line = tok.start[0]
        out.append(
            Pragma(
                comment_line=line,
                target_line=line + 1 if standalone else line,
                codes=codes,
                justification=(m.group("why") or "").strip(),
            )
        )
    return out


def apply_pragmas(
    findings: list[Finding],
    pragmas: list[Pragma],
    *,
    relpath: str,
    known_codes: set[str] | frozenset[str],
) -> tuple[list[Finding], list[Finding]]:
    """Split ``findings`` into (kept, suppressed) and audit the pragmas.

    Only a *justified* pragma naming the finding's rule on the finding's
    line suppresses it.  Framework findings (``RPR000``) are appended to
    ``kept`` for every defective pragma: missing justification, unknown
    rule code, or a justified pragma that suppressed nothing.
    """
    by_line: dict[int, list[Pragma]] = {}
    for p in pragmas:
        by_line.setdefault(p.target_line, []).append(p)

    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        hit = None
        if f.code != PRAGMA_CODE:
            for p in by_line.get(f.line, []):
                if f.code in p.codes and p.justification:
                    hit = p
                    break
        if hit is not None:
            hit.used = True
            suppressed.append(f)
        else:
            kept.append(f)

    for p in pragmas:
        unknown = [c for c in p.codes if c not in known_codes and c != PRAGMA_CODE]
        if not p.codes:
            message = "pragma lists no rule codes"
        elif unknown:
            message = f"pragma names unknown rule(s) {', '.join(unknown)}"
        elif PRAGMA_CODE in p.codes:
            message = f"{PRAGMA_CODE} findings cannot be suppressed"
        elif not p.justification:
            message = (
                "pragma has no justification — write "
                "'# repro: lint-ignore[RPRnnn]: why this is safe'"
            )
        elif not p.used:
            message = "stale pragma: it suppresses no finding on its line"
        else:
            continue
        kept.append(
            Finding(
                code=PRAGMA_CODE,
                path=relpath,
                line=p.comment_line,
                col=0,
                message=f"lint-pragma: {message}",
            )
        )
    return kept, suppressed
