"""Render a :class:`~repro.lint.runner.LintReport` as text or JSON.

The text form is one GCC-style line per finding plus a summary tail;
``--stats`` adds per-rule and per-file violation tables.  The JSON form
is the artifact CI uploads (``repro lint --report lint-report.json``).
"""

from __future__ import annotations

import json

from .registry import all_rules
from .runner import LintReport

__all__ = ["render_text", "render_stats", "render_json"]


def render_text(report: LintReport, *, stats: bool = False) -> str:
    lines = [f.render() for f in report.findings]
    if report.baselined:
        lines.append(f"  ({len(report.baselined)} finding(s) grandfathered by the baseline)")
    if report.expired:
        lines.append(
            f"  ({len(report.expired)} baseline entr(y/ies) expired — the debt was "
            "paid; run `repro lint --update-baseline` to drop them)"
        )
    verdict = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    lines.append(
        f"lint: {verdict} — {report.files_scanned} files, "
        f"{len(report.rules_run)} rules, {len(report.suppressed)} pragma-suppressed, "
        f"{len(report.baselined)} baselined"
    )
    if stats:
        lines.append("")
        lines.append(render_stats(report))
    return "\n".join(lines)


def render_stats(report: LintReport) -> str:
    """Violations by rule and by file (the ``--stats`` tables)."""
    by_rule = report.counts_by_rule()
    sup_by_rule: dict[str, int] = {}
    for f in report.suppressed:
        sup_by_rule[f.code] = sup_by_rule.get(f.code, 0) + 1
    lines = [f"{'rule':<8s} {'name':<30s} {'new':>5s} {'suppressed':>11s}"]
    for rule in all_rules(report.rules_run or None):
        lines.append(
            f"{rule.code:<8s} {rule.name:<30s} "
            f"{by_rule.get(rule.code, 0):>5d} {sup_by_rule.get(rule.code, 0):>11d}"
        )
    framework = by_rule.get("RPR000", 0)
    if framework:
        lines.append(f"{'RPR000':<8s} {'lint-framework':<30s} {framework:>5d} {0:>11d}")
    by_file = report.counts_by_file()
    if by_file:
        lines.append("")
        lines.append(f"{'findings':>8s}  file")
        for path, n in by_file.items():
            lines.append(f"{n:>8d}  {path}")
    return "\n".join(lines)


def render_json(report: LintReport, *, indent: int | None = 1) -> str:
    return json.dumps(report.to_json(), indent=indent, sort_keys=True)
