"""Runtime concurrency sanitizer (``REPRO_SANITIZE=1``).

The static rules RPR009/RPR011 reason about locks without running the
code; this module is the dynamic complement.  When installed it patches
the :func:`threading.Lock` / :func:`threading.RLock` factories so every
lock created afterwards is wrapped in a :class:`SanitizedLock` that

* keeps a per-thread stack of held locks,
* records *lock-order edges* between lock **creation sites** (acquiring
  B while holding A adds the edge ``A -> B``) — a cycle in that graph is
  a potential deadlock even if the run happened not to interleave badly,
* feeds an Eraser-style runtime lockset check for state registered via
  :func:`watch`: a :class:`WatchedDict` accessed from two threads whose
  held-lockset intersection is empty is reported as a race.

Edges between two locks created at the *same* site (e.g. two instances
of the same class) are ignored: per-instance locks of one class are
routinely taken in address order and would otherwise self-cycle.

The findings surface three ways: :func:`report` returns a JSON-ready
document (and publishes ``repro_sanitizer_*`` gauges to the metrics
registry), :func:`render` formats it for terminals, and ``repro
sanitize --report out.json <subcommand ...>`` runs any repro subcommand
under the sanitizer and fails the process when a cycle or race was
observed.  Importing :mod:`repro` with ``REPRO_SANITIZE=1`` in the
environment installs the sanitizer automatically, so chaos drills and
test runs can be sanitized without code changes.
"""

from __future__ import annotations

import sys
import threading

__all__ = [
    "SanitizedLock",
    "WatchedDict",
    "install",
    "installed",
    "uninstall",
    "reset",
    "watch",
    "report",
    "render",
]

#: The real factories, captured before any patching.
_real_lock = threading.Lock
_real_rlock = threading.RLock

#: Guards every module-level table below.  Deliberately a *raw* lock so
#: the sanitizer never traces (or deadlocks on) its own bookkeeping.
_meta = _real_lock()

_installed = False
_holders = threading.local()  # .stack: locks held by this thread, in order

_lock_sites: dict[str, int] = {}  # creation site -> number of locks made there
_edges: dict[tuple[str, str], dict] = {}  # (from-site, to-site) -> first witness
_acquires = 0
_races: list[dict] = []


def _site(depth: int) -> str:
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _held_stack() -> list:
    stack = getattr(_holders, "stack", None)
    if stack is None:
        stack = _holders.stack = []
    return stack


class SanitizedLock:
    """Lock wrapper that records ordering edges and the holder stack."""

    __slots__ = ("_inner", "site", "_reentrant", "_count", "_owner")

    def __init__(self, inner, site: str, *, reentrant: bool):
        self._inner = inner
        self.site = site
        self._reentrant = reentrant
        self._count = 0
        self._owner = None

    def acquire(self, blocking: bool = True, timeout: float = -1):
        me = threading.get_ident()
        if self._reentrant and self._owner == me:
            ok = self._inner.acquire(blocking, timeout)
            if ok:
                self._count += 1
            return ok
        _note_acquire(self)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = me
            self._count = 1
            _held_stack().append(self)
        return ok

    def release(self):
        if (
            self._reentrant
            and self._owner == threading.get_ident()
            and self._count > 1
        ):
            self._count -= 1
            self._inner.release()
            return
        self._count = 0
        self._owner = None
        stack = _held_stack()
        if self in stack:
            stack.remove(self)
        self._inner.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return inner_locked() if inner_locked is not None else self._count > 0

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __getattr__(self, name):  # Condition integration (_is_owned, ...)
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"<SanitizedLock site={self.site!r} held={self._count > 0}>"


def _note_acquire(lock: SanitizedLock) -> None:
    global _acquires
    stack = _held_stack()
    with _meta:
        _acquires += 1
        for held in stack:
            if held.site == lock.site:
                continue
            key = (held.site, lock.site)
            if key not in _edges:
                _edges[key] = {
                    "from": held.site,
                    "to": lock.site,
                    "thread": threading.current_thread().name,
                }


def _register_site(site: str) -> None:
    with _meta:
        _lock_sites[site] = _lock_sites.get(site, 0) + 1


def _make_lock():
    site = _site(2)
    _register_site(site)
    return SanitizedLock(_real_lock(), site, reentrant=False)


def _make_rlock():
    site = _site(2)
    _register_site(site)
    return SanitizedLock(_real_rlock(), site, reentrant=True)


def install() -> None:
    """Patch the :mod:`threading` lock factories; idempotent."""
    global _installed
    with _meta:
        if _installed:
            return
        threading.Lock = _make_lock
        threading.RLock = _make_rlock
        _installed = True


def uninstall() -> None:
    """Restore the real factories (existing wrapped locks keep working)."""
    global _installed
    with _meta:
        if not _installed:
            return
        threading.Lock = _real_lock
        threading.RLock = _real_rlock
        _installed = False


def installed() -> bool:
    return _installed


def reset() -> None:
    """Drop all recorded state (between tests); leaves install state alone."""
    global _acquires
    with _meta:
        _lock_sites.clear()
        _edges.clear()
        _races.clear()
        _acquires = 0


# ----------------------------------------------------------- shared state


class _SharedState:
    """Eraser bookkeeping for one watched object."""

    __slots__ = ("name", "threads", "candidate", "wrote", "reported")

    def __init__(self, name: str):
        self.name = name
        self.threads: set[int] = set()
        self.candidate: frozenset[str] | None = None
        self.wrote = False
        self.reported = False


def _record_access(state: _SharedState, op: str) -> None:
    held = frozenset(lock.site for lock in _held_stack())
    with _meta:
        state.threads.add(threading.get_ident())
        state.candidate = held if state.candidate is None else state.candidate & held
        if op == "write":
            state.wrote = True
        if (
            len(state.threads) >= 2
            and state.wrote
            and not state.candidate
            and not state.reported
        ):
            state.reported = True
            frame = sys._getframe(2)
            _races.append(
                {
                    "name": state.name,
                    "op": op,
                    "site": f"{frame.f_code.co_filename}:{frame.f_lineno}",
                    "thread": threading.current_thread().name,
                    "threads": len(state.threads),
                }
            )


class WatchedDict(dict):
    """A dict that reports lockset-inconsistent cross-thread access.

    Reads and writes each intersect the accessing thread's held-lockset
    into the candidate set; once two threads have touched the dict, a
    write with an empty candidate produces one race record.
    """

    def __init__(self, name: str, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._state = _SharedState(name)

    # reads
    def __getitem__(self, key):
        _record_access(self._state, "read")
        return super().__getitem__(key)

    def get(self, key, default=None):
        _record_access(self._state, "read")
        return super().get(key, default)

    def __contains__(self, key):
        _record_access(self._state, "read")
        return super().__contains__(key)

    def items(self):
        _record_access(self._state, "read")
        return super().items()

    def values(self):
        _record_access(self._state, "read")
        return super().values()

    def keys(self):
        _record_access(self._state, "read")
        return super().keys()

    # writes
    def __setitem__(self, key, value):
        _record_access(self._state, "write")
        super().__setitem__(key, value)

    def __delitem__(self, key):
        _record_access(self._state, "write")
        super().__delitem__(key)

    def pop(self, *args):
        _record_access(self._state, "write")
        return super().pop(*args)

    def popitem(self):
        _record_access(self._state, "write")
        return super().popitem()

    def setdefault(self, key, default=None):
        _record_access(self._state, "write")
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        _record_access(self._state, "write")
        super().update(*args, **kwargs)

    def clear(self):
        _record_access(self._state, "write")
        super().clear()


def watch(name: str, mapping=None) -> WatchedDict:
    """Wrap ``mapping`` (default: empty) in a monitored :class:`WatchedDict`."""
    return WatchedDict(name, mapping if mapping is not None else {})


# ------------------------------------------------------------- reporting


def _find_cycles(edges: list[dict]) -> list[list[str]]:
    """Strongly-connected components of size > 1 in the site graph."""
    graph: dict[str, set[str]] = {}
    for e in edges:
        graph.setdefault(e["from"], set()).add(e["to"])
        graph.setdefault(e["to"], set())

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in graph[v]:
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp: list[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            if len(comp) > 1:
                cycles.append(sorted(comp))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sorted(cycles)


def report() -> dict:
    """Snapshot the sanitizer state; also publishes ``repro_sanitizer_*``."""
    with _meta:
        edges = [dict(e) for e in _edges.values()]
        races = [dict(r) for r in _races]
        sites = dict(_lock_sites)
        acquires = _acquires
    doc = {
        "format": "repro-sanitizer-report",
        "version": 1,
        "installed": _installed,
        "locks_tracked": sum(sites.values()),
        "lock_sites": sites,
        "acquisitions": acquires,
        "edges": sorted(edges, key=lambda e: (e["from"], e["to"])),
        "cycles": _find_cycles(edges),
        "races": races,
        "ok": True,
    }
    doc["ok"] = not doc["cycles"] and not doc["races"]
    _publish_metrics(doc)
    return doc


def _publish_metrics(doc: dict) -> None:
    from ..obs.metrics import get_registry

    reg = get_registry()
    reg.gauge(
        "repro_sanitizer_locks_tracked", "locks created under the sanitizer"
    ).set(doc["locks_tracked"])
    reg.gauge(
        "repro_sanitizer_acquisitions", "lock acquisitions observed"
    ).set(doc["acquisitions"])
    reg.gauge(
        "repro_sanitizer_lock_order_edges", "distinct lock-order edges observed"
    ).set(len(doc["edges"]))
    reg.gauge(
        "repro_sanitizer_lock_order_cycles", "lock-order cycles (potential deadlocks)"
    ).set(len(doc["cycles"]))
    reg.gauge(
        "repro_sanitizer_races", "lockset-inconsistent shared-state accesses"
    ).set(len(doc["races"]))


def _short(site: str) -> str:
    for marker in ("/src/", "/site-packages/", "/lib/"):
        i = site.rfind(marker)
        if i >= 0:
            return site[i + len(marker):]
    return site


def render(doc: dict) -> str:
    """Human-readable sanitizer report."""
    lines = [
        f"sanitizer: {doc['locks_tracked']} lock(s) from "
        f"{len(doc['lock_sites'])} site(s), {doc['acquisitions']} "
        f"acquisition(s), {len(doc['edges'])} order edge(s)"
    ]
    for cyc in doc["cycles"]:
        lines.append("  CYCLE " + " <-> ".join(_short(s) for s in cyc))
    for race in doc["races"]:
        lines.append(
            f"  RACE {race['name']} ({race['op']} at {_short(race['site'])} "
            f"in {race['thread']}; {race['threads']} threads, no common lock)"
        )
    if doc["ok"]:
        lines.append("  no lock-order cycles, no races")
    return "\n".join(lines)
