"""Rule registry and per-file analysis context.

Every rule is a small class with a ``code`` (``RPRnnn``), a kebab-case
``name``, a one-line ``summary``, and a ``check(ctx)`` generator that
yields :class:`~repro.lint.findings.Finding` objects for one parsed
file.  Registration is declarative::

    @register
    class MyRule(Rule):
        code = "RPR042"
        name = "my-contract"
        summary = "what the contract forbids"

        def check(self, ctx):
            ...

The registry is populated once at import time by :mod:`repro.lint.rules`
and read-only afterwards, so no locking is needed.

Rules come in two granularities.  Plain :class:`Rule` subclasses see
one file at a time through ``check(ctx)``.  :class:`ProjectRule`
subclasses instead implement ``check_project(project)`` and receive a
:class:`~repro.lint.analysis.project.ProjectContext` built over *every*
file in the run — symbol table, call graph, thread roots — so they can
reason across call and module boundaries (RPR008–RPR011).  Both kinds
share the registry, pragma suppression and baseline machinery.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .findings import Finding

__all__ = [
    "FileContext",
    "ProjectRule",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_codes",
]


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    relpath: str  # "repro/core/report.py" (posix, package-parent relative)
    module: str  # "repro.core.report"
    source: str
    tree: ast.Module
    is_package: bool = False  # True for __init__.py files
    lines: list[str] = field(default_factory=list)

    @classmethod
    def from_source(
        cls,
        source: str,
        *,
        relpath: str = "<memory>",
        module: str = "<module>",
        is_package: bool = False,
    ) -> "FileContext":
        """Parse ``source`` into a context (raises SyntaxError on bad input)."""
        return cls(
            relpath=relpath,
            module=module,
            source=source,
            tree=ast.parse(source, filename=relpath),
            is_package=is_package,
            lines=source.splitlines(),
        )

    def line(self, lineno: int) -> str:
        """The raw source text of a 1-based line (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for one contract check; subclasses set the class attrs."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``'s location in ``ctx``'s file."""
        return Finding(
            code=self.code,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=f"{self.name}: {message}",
        )


class ProjectRule(Rule):
    """A rule that runs once over the whole project, not per file.

    Subclasses implement ``check_project``; the per-file ``check`` hook
    is a no-op so a ProjectRule can sit in the same registry and be
    selected by code like any other rule.  ``finding_at`` anchors a
    finding in whichever file the evidence lives in.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=path,
            line=line,
            col=col,
            message=f"{self.name}: {message}",
        )


_RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.code or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define code and name")
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    _RULES[rule.code] = rule
    return cls


def all_rules(codes: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """Registered rules sorted by code; ``codes`` selects a subset."""
    if codes is None:
        return tuple(_RULES[c] for c in sorted(_RULES))
    out = []
    for code in codes:
        if code not in _RULES:
            raise KeyError(f"unknown lint rule {code!r}; known: {sorted(_RULES)}")
        out.append(_RULES[code])
    return tuple(sorted(out, key=lambda r: r.code))


def get_rule(code: str) -> Rule:
    return _RULES[code]


def rule_codes() -> tuple[str, ...]:
    return tuple(sorted(_RULES))
