"""repro.lint — contract-aware static analysis with a zero-violation gate.

The repo's correctness rests on conventions no test can fully cover:
artifact writes are atomic, power caps are matched with ``math.isclose``
(never ``==``), pickle stays dead outside the one migration shim,
imports point down the documented layers, trace spans always close, and
shared registries mutate under their locks.  This package machine-checks
those conventions over the AST of every source file:

* :func:`lint_paths` / :func:`check_source` — the analysis pipeline;
* :mod:`repro.lint.rules` — the rule set (RPR001–RPR011), extensible
  via :func:`~repro.lint.registry.register`;
* :mod:`repro.lint.analysis` — the project-wide engine (symbol table,
  call graph, thread roots, lockset propagation) behind RPR008–RPR011;
* :mod:`repro.lint.sanitizer` — the *runtime* complement: lock-order
  and lockset checking under ``REPRO_SANITIZE=1`` / ``repro sanitize``;
* :mod:`repro.lint.pragmas` — justified, audited in-source suppressions;
* :mod:`repro.lint.baseline` — grandfather-then-burn-down semantics for
  adopting new rules (this repo's checked-in baseline is empty and CI
  keeps it that way);
* :mod:`repro.lint.reporting` — text and JSON reports.

``repro lint`` (and ``repro doctor --lint``) exit non-zero on any new
finding, making the contracts a blocking CI gate.  See
``docs/static_analysis.md``.
"""

from . import rules as _rules  # noqa: F401  — importing registers the rule set
from .baseline import DEFAULT_BASELINE_PATH, Baseline, finding_fingerprint
from .findings import PRAGMA_CODE, Finding
from .pragmas import Pragma, apply_pragmas, scan_pragmas
from .registry import (
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
    rule_codes,
)
from .reporting import render_json, render_stats, render_text
from .runner import LintReport, check_source, lint_paths

__all__ = [
    "Finding",
    "PRAGMA_CODE",
    "FileContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "rule_codes",
    "Pragma",
    "scan_pragmas",
    "apply_pragmas",
    "Baseline",
    "finding_fingerprint",
    "DEFAULT_BASELINE_PATH",
    "LintReport",
    "lint_paths",
    "check_source",
    "render_text",
    "render_stats",
    "render_json",
]
