"""The lint driver: walk sources, run rules, apply pragmas and baseline.

:func:`lint_paths` is the whole pipeline behind ``repro lint``:

1. collect ``*.py`` files under the given paths (default: the installed
   ``repro`` package — i.e. ``src/repro`` in a checkout);
2. parse every file up front (a file that does not parse yields a
   single ``RPR000`` finding);
3. run the per-file rules over each parsed file, then build one
   :class:`~repro.lint.analysis.project.ProjectContext` over *all*
   parsed files and run the project-wide rules (RPR008–RPR011) on it;
4. apply ``# repro: lint-ignore[...]`` pragmas per file (justified
   suppressions drop findings; defective pragmas *add* findings);
5. optionally scope the surviving findings to a changed-file set
   (``repro lint --changed``) — the whole project is still analysed so
   cross-file rules see every thread root, only the *reporting* narrows;
6. partition survivors against the baseline (new vs. grandfathered) and
   note expired baseline entries;
7. record the outcome in the :mod:`repro.obs.metrics` registry so a
   sweep's metrics dump carries the static-analysis health of the code
   that produced it.

:func:`check_source` is the single-file slice of the same pipeline for
tests and tooling; project rules run over a one-file project there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..obs.metrics import MetricsRegistry, get_registry
from .analysis.project import ProjectContext
from .baseline import DEFAULT_BASELINE_PATH, Baseline
from .findings import PRAGMA_CODE, Finding
from .pragmas import apply_pragmas, scan_pragmas
from .registry import FileContext, ProjectRule, all_rules

__all__ = ["LintReport", "lint_paths", "check_source", "module_name_for"]

#: The package this linter ships to guard.
DEFAULT_TARGET = Path(__file__).resolve().parents[1]


@dataclass
class LintReport:
    """Outcome of one lint run (``repro lint``'s return value)."""

    findings: list[Finding] = field(default_factory=list)  # new, gate-breaking
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)  # justified pragmas
    expired: set[str] = field(default_factory=set)  # paid-off baseline entries
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()
    baseline_path: str | None = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def counts_by_file(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.path] = out.get(f.path, 0) + 1
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def to_json(self) -> dict:
        return {
            "format": "repro-lint-report",
            "version": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "baseline_path": self.baseline_path,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "expired_baseline_entries": sorted(self.expired),
            "stats": {"by_rule": self.counts_by_rule(), "by_file": self.counts_by_file()},
        }


def module_name_for(path: Path) -> tuple[str, bool, Path]:
    """Resolve a file to (dotted module, is_package, package parent dir).

    Walks up through ``__init__.py`` markers, so ``src/repro/core/x.py``
    maps to ``repro.core.x`` with parent ``src`` no matter where the
    linter is invoked from.
    """
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    d = path.parent
    while (d / "__init__.py").exists():
        parts.insert(0, d.name)
        d = d.parent
    if not parts:
        parts = [path.stem]
    return ".".join(parts), is_package, d


def _iter_py_files(target: Path) -> list[Path]:
    if target.is_file():
        return [target] if target.suffix == ".py" else []
    return sorted(p for p in target.rglob("*.py") if "__pycache__" not in p.parts)


def _split_rules(selected) -> tuple[list, list]:
    file_rules = [r for r in selected if not isinstance(r, ProjectRule)]
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    return file_rules, project_rules


def _run_rules(
    contexts: list[FileContext], file_rules, project_rules
) -> dict[str, list[Finding]]:
    """Raw findings per relpath: per-file rules, then project rules."""
    by_file: dict[str, list[Finding]] = {}
    for ctx in contexts:
        out = by_file.setdefault(ctx.relpath, [])
        for rule in file_rules:
            out.extend(rule.check(ctx))
    if project_rules:
        project = ProjectContext(contexts)
        for rule in project_rules:
            for finding in rule.check_project(project):
                by_file.setdefault(finding.path, []).append(finding)
    return by_file


def check_source(
    source: str,
    *,
    relpath: str = "<memory>",
    module: str = "<module>",
    is_package: bool = False,
    rules=None,
) -> list[Finding]:
    """Lint one source string; returns the findings that survive pragmas.

    Project rules run over a single-file project, so thread roots and
    call edges inside the snippet are still discovered.
    """
    selected = all_rules(rules)
    try:
        ctx = FileContext.from_source(
            source, relpath=relpath, module=module, is_package=is_package
        )
    except SyntaxError as exc:
        return [
            Finding(
                code=PRAGMA_CODE,
                path=relpath,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"parse-error: {exc.msg}",
            )
        ]
    file_rules, project_rules = _split_rules(selected)
    raw = _run_rules([ctx], file_rules, project_rules).get(relpath, [])
    kept, _suppressed = apply_pragmas(
        raw,
        scan_pragmas(source),
        relpath=relpath,
        known_codes=frozenset(r.code for r in selected),
    )
    return sorted(kept, key=lambda f: f.sort_key)


def lint_paths(
    paths=None,
    *,
    baseline_path: str | Path | None = None,
    update_baseline: bool = False,
    rules=None,
    only: Iterable[str | Path] | None = None,
    metrics: MetricsRegistry | None = None,
) -> LintReport:
    """Lint files/directories (default: the ``repro`` package). See module doc.

    ``only`` restricts *reported* findings to the given files (used by
    ``repro lint --changed``); the full path set is still parsed and
    analysed so project-wide rules keep their whole-program view.
    """
    targets = [Path(p) for p in paths] if paths else [DEFAULT_TARGET]
    files: list[Path] = []
    seen: set[Path] = set()
    for t in targets:
        for f in _iter_py_files(t):
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                files.append(r)

    selected = all_rules(rules)
    file_rules, project_rules = _split_rules(selected)

    contexts: list[FileContext] = []
    sources: dict[str, str] = {}
    relpath_of: dict[str, Path] = {}
    parse_failures: list[Finding] = []
    for f in sorted(files):
        module, is_package, root = module_name_for(f)
        relpath = f.relative_to(root).as_posix()
        relpath_of[relpath] = f
        source = f.read_text()
        sources[relpath] = source
        try:
            contexts.append(
                FileContext.from_source(
                    source, relpath=relpath, module=module, is_package=is_package
                )
            )
        except SyntaxError as exc:
            parse_failures.append(
                Finding(
                    code=PRAGMA_CODE,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"parse-error: {exc.msg}",
                )
            )

    raw_by_file = _run_rules(contexts, file_rules, project_rules)

    known_codes = frozenset(r.code for r in selected)
    kept: list[Finding] = list(parse_failures)
    suppressed: list[Finding] = []
    context_by_path: dict[str, FileContext] = {c.relpath: c for c in contexts}
    for ctx in contexts:
        k, s = apply_pragmas(
            raw_by_file.get(ctx.relpath, []),
            scan_pragmas(sources[ctx.relpath]),
            relpath=ctx.relpath,
            known_codes=known_codes,
        )
        kept.extend(k)
        suppressed.extend(s)

    if only is not None:
        wanted = {Path(p).resolve() for p in only}
        kept = [f for f in kept if relpath_of.get(f.path) in wanted]
        suppressed = [f for f in suppressed if relpath_of.get(f.path) in wanted]

    kept.sort(key=lambda f: f.sort_key)
    suppressed.sort(key=lambda f: f.sort_key)

    def line_lookup(finding: Finding) -> str:
        ctx = context_by_path.get(finding.path)
        return ctx.line(finding.line) if ctx is not None else ""

    resolved_baseline: Path | None
    if baseline_path is not None:
        resolved_baseline = Path(baseline_path)
    else:
        resolved_baseline = DEFAULT_BASELINE_PATH if DEFAULT_BASELINE_PATH.exists() else None

    if resolved_baseline is not None:
        baseline = Baseline.load(resolved_baseline)
        if update_baseline:
            baseline = Baseline.from_findings(kept, line_lookup, path=resolved_baseline)
            baseline.save()
        new, baselined, expired = baseline.partition(kept, line_lookup)
    else:
        new, baselined, expired = kept, [], set()

    report = LintReport(
        findings=new,
        baselined=baselined,
        suppressed=suppressed,
        expired=expired,
        files_scanned=len(files),
        rules_run=tuple(r.code for r in selected),
        baseline_path=str(resolved_baseline) if resolved_baseline is not None else None,
    )
    _record_metrics(report, metrics if metrics is not None else get_registry())
    return report


def _record_metrics(report: LintReport, registry: MetricsRegistry) -> None:
    """Expose the lint outcome through the observability layer."""
    registry.counter("repro_lint_runs_total", "lint invocations in this process").inc()
    registry.gauge(
        "repro_lint_files_scanned", "files scanned by the most recent lint run"
    ).set(report.files_scanned)
    by_rule = report.counts_by_rule()
    for code in (*report.rules_run, PRAGMA_CODE):
        registry.gauge(
            "repro_lint_findings", "open static-analysis findings by rule", rule=code
        ).set(by_rule.get(code, 0))
    registry.gauge(
        "repro_lint_baselined", "findings grandfathered by the baseline"
    ).set(len(report.baselined))
