"""The linter's currency: one :class:`Finding` per contract violation.

A finding pins a rule code to a source location with a human-actionable
message.  Findings are value objects — hashable, ordered by location,
JSON round-trippable — so the runner can dedupe them, the baseline can
fingerprint them, and the CI job can diff reports across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "PRAGMA_CODE"]

#: Findings about the lint mechanism itself (bad pragmas, parse errors).
#: They are emitted by the framework, not by a registered rule, and are
#: never suppressible — a broken suppression must not hide itself.
PRAGMA_CODE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str  # "RPR002"
    path: str  # posix path relative to the package parent, e.g. "repro/core/report.py"
    line: int  # 1-based
    col: int  # 0-based, as ast reports it
    message: str

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Finding":
        return cls(
            code=str(doc["code"]),
            path=str(doc["path"]),
            line=int(doc["line"]),
            col=int(doc.get("col", 0)),
            message=str(doc["message"]),
        )
