"""Findings baseline: grandfather existing debt without hiding new debt.

A baseline file records fingerprints of known findings so an adopted
rule can land while its pre-existing violations are burned down.  The
semantics:

* a finding whose fingerprint is in the baseline is reported as
  *baselined* and does not fail the run;
* a fresh finding (no fingerprint match) fails the run;
* a baseline entry matching no current finding is *expired* — the debt
  was paid — and ``repro lint --update-baseline`` removes it.

Fingerprints hash ``(rule, path, normalized source line, occurrence)``
rather than line numbers, so unrelated edits shifting a file do not
churn the baseline.  This repo's checked-in baseline is **empty** and
CI keeps it that way: the mechanism exists for future rule adoption,
not as a parking lot.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable

from ..core.atomicio import atomic_write_json
from .findings import Finding

__all__ = ["Baseline", "finding_fingerprint", "DEFAULT_BASELINE_PATH"]

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

#: Looked for in the working directory when ``--baseline`` is not given.
DEFAULT_BASELINE_PATH = Path("lint_baseline.json")


def finding_fingerprint(finding: Finding, line_text: str, occurrence: int = 0) -> str:
    """Line-number-independent identity of a finding.

    ``occurrence`` disambiguates identical violations on identical
    source lines within one file (0 for the first, 1 for the next, ...).
    """
    normalized = " ".join(line_text.split())
    payload = f"{finding.code}|{finding.path}|{normalized}|{occurrence}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class Baseline:
    """The set of grandfathered finding fingerprints."""

    def __init__(self, entries: set[str] | None = None, *, path: str | Path | None = None):
        self.entries: set[str] = set(entries or ())
        self.path = Path(path) if path is not None else None

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        p = Path(path)
        if not p.exists():
            return cls(path=p)
        doc = json.loads(p.read_text())
        if doc.get("format") != BASELINE_FORMAT:
            raise ValueError(f"{p} is not a lint baseline (format={doc.get('format')!r})")
        if int(doc.get("version", 1)) > BASELINE_VERSION:
            raise ValueError(
                f"{p} has baseline version {doc['version']}, newer than supported {BASELINE_VERSION}"
            )
        return cls(set(str(e) for e in doc.get("entries", [])), path=p)

    def save(self, path: str | Path | None = None) -> Path:
        """Atomically write the baseline (sorted, so diffs stay minimal)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("baseline has no path to save to")
        atomic_write_json(
            target,
            {
                "format": BASELINE_FORMAT,
                "version": BASELINE_VERSION,
                "entries": sorted(self.entries),
            },
            indent=1,
        )
        self.path = target
        return target

    # ------------------------------------------------------------ matching
    def partition(
        self, findings: list[Finding], line_lookup: Callable[[Finding], str]
    ) -> tuple[list[Finding], list[Finding], set[str]]:
        """Split findings into (new, baselined) and report expired entries.

        ``line_lookup`` maps a finding to its current source line text
        (the runner closes over its parsed file contexts).  Expired
        entries are baseline fingerprints no current finding matched.
        """
        seen_occurrences: dict[str, int] = {}
        matched: set[str] = set()
        new: list[Finding] = []
        baselined: list[Finding] = []
        for f in sorted(findings, key=lambda f: f.sort_key):
            text = line_lookup(f)
            base = f"{f.code}|{f.path}|{' '.join(text.split())}"
            occurrence = seen_occurrences.get(base, 0)
            seen_occurrences[base] = occurrence + 1
            fp = finding_fingerprint(f, text, occurrence)
            if fp in self.entries:
                matched.add(fp)
                baselined.append(f)
            else:
                new.append(f)
        expired = self.entries - matched
        return new, baselined, expired

    @classmethod
    def from_findings(
        cls,
        findings: list[Finding],
        line_lookup: Callable[[Finding], str],
        *,
        path: str | Path | None = None,
    ) -> "Baseline":
        """A baseline covering exactly the given findings."""
        fresh = cls(path=path)
        seen_occurrences: dict[str, int] = {}
        for f in sorted(findings, key=lambda f: f.sort_key):
            text = line_lookup(f)
            base = f"{f.code}|{f.path}|{' '.join(text.split())}"
            occurrence = seen_occurrences.get(base, 0)
            seen_occurrences[base] = occurrence + 1
            fresh.entries.add(finding_fingerprint(f, text, occurrence))
        return fresh
