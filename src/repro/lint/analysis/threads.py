"""Thread-root discovery: what actually runs concurrently.

A *thread root* is a function that executes on its own thread of
control: a ``threading.Thread`` target, a callable handed to an
executor's ``submit``, or a span function handed to the sharded
backend's ``run_spans``.  The function that *launches* the concurrency
is a root too (kind ``"spawner"``) — it keeps executing alongside its
children, so its own accesses participate in races.

``multi`` marks roots that can have several live instances at once:
pool callbacks and span runners always can; a plain ``Thread`` target
can when the spawn site sits inside a loop or comprehension (the
supervisor's worker pool spawns ``_worker_loop`` once per worker from a
comprehension, for example).  The race detector needs this to flag
state a single root races against *itself*.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .model import ThreadRoot

__all__ = ["discover_roots"]


def discover_roots(graph: CallGraph) -> list[ThreadRoot]:
    roots: dict[tuple[str, str], ThreadRoot] = {}
    for fn in graph.functions.values():
        if not fn.spawns:
            continue
        first = fn.spawns[0]
        spawner_site = f"{first.path}:{first.line}"
        spawner = ThreadRoot(
            function=fn.qualname, kind="spawner", spawned_at=spawner_site, multi=False
        )
        roots.setdefault((fn.qualname, "spawner"), spawner)
        for spawn in fn.spawns:
            if spawn.target is None:
                continue
            target = graph.resolve(fn, spawn.target)
            if target is None:
                continue
            multi = spawn.in_loop or spawn.kind in {"pool", "shard-span"}
            key = (target.qualname, spawn.kind)
            existing = roots.get(key)
            if existing is None or (multi and not existing.multi):
                roots[key] = ThreadRoot(
                    function=target.qualname,
                    kind=spawn.kind,
                    spawned_at=f"{spawn.path}:{spawn.line}",
                    multi=multi,
                )
    return sorted(roots.values(), key=lambda r: (r.function, r.kind))
