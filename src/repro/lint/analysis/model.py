"""Data model for the project-wide analysis engine.

Everything the engine learns about the codebase is normalised into the
small dataclasses below so the rule layer never touches raw AST nodes
from *other* files:

* :class:`Location` — a shared-state cell: a module-level name or a
  ``Class.attr`` instance attribute.  Race candidates are keyed by it.
* :class:`Access` — one read/write of a :class:`Location` inside a
  function, annotated with the lexical lockset held at the access.
* :class:`Callee` — how a call target was spelled, in a resolvable
  form; :class:`CallSite` adds where and under which locks.
* :class:`FunctionInfo` / :class:`ClassInfo` / :class:`ModuleInfo` —
  the per-module symbol table, including inferred attribute types and
  the set of mutable container attributes.
* :class:`SpawnSite` / :class:`ThreadRoot` — where threads, pool
  callbacks and sharded span runners are launched, and what runs there.

Lock names are canonicalised so the same lock observed from different
syntactic positions compares equal: ``self._lock`` inside class ``C``
of module ``pkg.mod`` becomes ``pkg.mod:C._lock``; a module-level
``_LOCK`` becomes ``pkg.mod:_LOCK``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Kinds of shared-state cells.
GLOBAL = "global"
ATTR = "attr"

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Location:
    """A shared-state cell addressable from more than one thread."""

    kind: str  # GLOBAL or ATTR
    owner: str  # module name (GLOBAL) or dotted class name (ATTR)
    name: str  # variable / attribute name

    def render(self) -> str:
        sep = ":" if self.kind == GLOBAL else "."
        return f"{self.owner}{sep}{self.name}"


@dataclass(frozen=True)
class Access:
    """One read or write of a :class:`Location` inside a function."""

    location: Location
    op: str  # READ or WRITE
    lockset: frozenset[str]
    path: str  # repo-relative file of the access
    line: int
    col: int
    in_constructor: bool = False


@dataclass(frozen=True)
class Callee:
    """How a call target was spelled, in a resolvable form.

    ``kind`` values:

    * ``"name"``   — ``foo(...)``; ``name`` is the bare identifier.
    * ``"self"``   — ``self.m(...)``; ``name`` is the method.
    * ``"typed"``  — ``obj.m(...)`` with ``obj``'s class inferred;
      ``receiver`` is the dotted class name, ``name`` the method.
    * ``"module"`` — ``mod.f(...)`` on an imported name; ``receiver``
      is the absolute dotted target, ``name`` the function.
    * ``"opaque"`` — unknown receiver; ``receiver`` is the unparsed
      receiver text (diagnostics only, never resolved).
    """

    kind: str
    name: str
    receiver: str | None = None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    callee: Callee
    lockset: frozenset[str]
    path: str
    line: int
    col: int
    # Units of positional / keyword arguments (None = unknown), as
    # inferred from terminal-name suffixes.
    arg_units: tuple[str | None, ...] = ()
    kwarg_units: tuple[tuple[str, str | None], ...] = ()
    # Unit demanded by the binding target (``x_ms = call()``), if any.
    bound_unit: str | None = None
    bound_name: str | None = None


@dataclass(frozen=True)
class SpawnSite:
    """A thread/pool/span launch observed inside a function.

    ``kind`` is ``"thread"`` (``threading.Thread(target=...)``),
    ``"pool"`` (``executor.submit(fn, ...)``) or ``"shard-span"``
    (``run_spans(fn, ...)``).  ``target`` is None when the callable
    argument was not a resolvable name/method reference.  ``in_loop``
    is True when the launch sits inside a loop or comprehension, i.e.
    several instances of the target may run concurrently.
    """

    kind: str
    target: Callee | None
    path: str
    line: int
    in_loop: bool


@dataclass
class FunctionInfo:
    """A function or method discovered in the project."""

    qualname: str  # "pkg.mod:func", "pkg.mod:Class.meth", nested: parent + ".child"
    module: str
    cls: str | None  # owning dotted class name ("pkg.mod.Class") or None
    name: str
    path: str
    line: int
    params: tuple[str, ...] = ()
    accesses: list[Access] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    # Names of functions nested directly inside this one (for call
    # resolution of closures handed to thread pools).
    children: dict[str, "FunctionInfo"] = field(default_factory=dict)
    # Unit of the return value inferred from return expressions, or None.
    return_unit: str | None = None
    # When every meaningful return is a bare call, the callee — lets the
    # project phase propagate return units one call deep.
    return_call: Callee | None = None
    # True for __init__-like methods where the object is not yet shared.
    is_constructor: bool = False


@dataclass
class ClassInfo:
    """A class and what the engine inferred about its attributes."""

    qualname: str  # dotted: "pkg.mod.Class"
    module: str
    name: str
    path: str
    line: int
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    # Attribute name -> dotted class name of the value, when inferrable.
    attr_types: dict[str, str] = field(default_factory=dict)
    # Attributes initialised to mutable containers (dict/list/set/...).
    mutable_attrs: set[str] = field(default_factory=set)
    # Attributes whose initialiser looks like a lock.
    lock_attrs: set[str] = field(default_factory=set)
    # Every attribute ever assigned through ``self`` in this class.
    attr_universe: set[str] = field(default_factory=set)
    bases: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Per-module slice of the project symbol table."""

    module: str
    path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    # Bare name -> absolute dotted target for ``import``/``from`` forms.
    imports: dict[str, str] = field(default_factory=dict)
    # Module-level names bound to mutable containers.
    global_mutables: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class ThreadRoot:
    """A function that runs on its own thread (or pool/span worker).

    ``multi`` is True when more than one concurrent instance of the
    root can exist: pool callbacks and span runners always, plain
    ``Thread`` targets when the spawn site sits inside a loop or
    comprehension.  Functions that *launch* concurrency are roots too
    (kind ``"spawner"``) — they keep running alongside their children —
    but are always single-instance.
    """

    function: str  # qualname of the root function
    kind: str  # "thread" | "pool" | "shard-span" | "spawner"
    spawned_at: str  # "path:line" of the spawn site
    multi: bool
