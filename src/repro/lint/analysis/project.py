"""Project-wide analysis context handed to :class:`ProjectRule`\\ s.

Built once per lint run from every parsed file, then queried lazily:
the symbol table, the resolved call graph, the thread roots, and the
Eraser-style *access map* — for every shared-state cell, the accesses
reachable from each thread root together with the locks held on that
path (lexical locks at the access plus locks inherited from the call
chain).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..registry import FileContext
from .callgraph import CallGraph, LockEntry
from .model import Access, FunctionInfo, Location, ModuleInfo, ThreadRoot
from .symbols import build_module
from .threads import discover_roots

__all__ = ["ProjectContext", "RootedAccess"]

_MAX_DEPTH = 24


@dataclass(frozen=True)
class RootedAccess:
    """One access observed on a path from a thread root."""

    root: ThreadRoot
    access: Access
    lockset: frozenset[str]  # lexical locks at the access + inherited


class ProjectContext:
    """Lazily-built whole-project view over all parsed files."""

    def __init__(self, contexts: list[FileContext]):
        self._contexts = list(contexts)
        self._modules: dict[str, ModuleInfo] | None = None
        self._graph: CallGraph | None = None
        self._roots: list[ThreadRoot] | None = None
        self._access_map: dict[Location, list[RootedAccess]] | None = None

    @property
    def contexts(self) -> list[FileContext]:
        return self._contexts

    @property
    def modules(self) -> dict[str, ModuleInfo]:
        if self._modules is None:
            built: dict[str, ModuleInfo] = {}
            for ctx in self._contexts:
                built[ctx.module] = build_module(ctx)
            self._modules = built
        return self._modules

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph(self.modules)
        return self._graph

    @property
    def thread_roots(self) -> list[ThreadRoot]:
        if self._roots is None:
            self._roots = discover_roots(self.graph)
        return self._roots

    def lock_entries(self) -> dict[str, LockEntry]:
        return self.graph.lock_entries()

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.graph.functions.get(qualname)

    def access_map(self) -> dict[Location, list[RootedAccess]]:
        """Shared-state cells -> accesses reachable from thread roots."""
        if self._access_map is not None:
            return self._access_map
        graph = self.graph
        result: dict[Location, list[RootedAccess]] = {}
        for root in self.thread_roots:
            fn = graph.functions.get(root.function)
            if fn is None:
                continue
            visited: set[tuple[str, frozenset[str]]] = set()
            stack: list[tuple[FunctionInfo, frozenset[str], int]] = [(fn, frozenset(), 0)]
            while stack:
                current, inherited, depth = stack.pop()
                key = (current.qualname, inherited)
                if key in visited or depth > _MAX_DEPTH:
                    continue
                visited.add(key)
                for access in current.accesses:
                    result.setdefault(access.location, []).append(
                        RootedAccess(
                            root=root,
                            access=access,
                            lockset=access.lockset | inherited,
                        )
                    )
                for call in current.calls:
                    callee = graph.resolve(current, call.callee)
                    if callee is not None:
                        stack.append((callee, inherited | call.lockset, depth + 1))
        self._access_map = result
        return result
