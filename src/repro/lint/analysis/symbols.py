"""Per-module symbol extraction for the project analysis engine.

:func:`build_module` turns one parsed file into a :class:`ModuleInfo`:
imports, classes (with inferred attribute types, mutable containers and
lock attributes), and functions annotated with every shared-state
access, call site and thread-spawn site — each tagged with the lexical
lockset held at that point.

The extraction is deliberately lexical: a ``with <expr>:`` item whose
unparsed text mentions ``lock``/``mutex`` counts as holding that lock
for the block, matching the convention the per-file rules (RPR007)
already enforce.  Lock names are canonicalised per class or module so
the same lock observed from different call paths compares equal.
"""

from __future__ import annotations

import ast

from ..registry import FileContext
from .model import (
    ATTR,
    GLOBAL,
    READ,
    WRITE,
    Access,
    Callee,
    CallSite,
    ClassInfo,
    FunctionInfo,
    Location,
    ModuleInfo,
    SpawnSite,
)
from .units import expr_unit, terminal_name, unit_of

__all__ = ["CONSTRUCTOR_NAMES", "MUTABLE_CTORS", "MUTATORS", "build_module"]

#: Constructor calls that produce mutable containers.
MUTABLE_CTORS = {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}

#: Method names that mutate their receiver in place.
MUTATORS = {
    "append",
    "appendleft",
    "add",
    "update",
    "insert",
    "extend",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "move_to_end",
}

#: Methods that run before the object is published to other threads.
CONSTRUCTOR_NAMES = {"__init__", "__new__", "__post_init__"}

_LOCKISH = ("lock", "mutex")


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in MUTABLE_CTORS
    return False


def _looks_lockish(value: ast.expr) -> bool:
    try:
        text = ast.unparse(value).lower()
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    return any(word in text for word in _LOCKISH)


def _annotation_class(node: ast.expr | None) -> str | None:
    """Bare class name out of a parameter annotation, if recognisable."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text if text.isidentifier() else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` / ``None | X``
        for side in (node.left, node.right):
            got = _annotation_class(side)
            if got is not None and got != "None":
                return got
        return None
    if isinstance(node, ast.Subscript):
        # ``Optional[X]``
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _annotation_class(node.slice)
    return None


def _ctor_class(value: ast.expr) -> str | None:
    """Bare class name when ``value`` is (or branches to) ``ClassName(...)``."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        name = value.func.id
        if name[:1].isupper() and name not in MUTABLE_CTORS:
            return name
    if isinstance(value, ast.IfExp):
        return _ctor_class(value.body) or _ctor_class(value.orelse)
    return None


def _collect_imports(tree: ast.Module, module: str, is_package: bool) -> dict[str, str]:
    imports: dict[str, str] = {}
    parts = module.split(".") if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                imports[bound] = alias.name if alias.asname else alias.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = parts if is_package else parts[:-1]
                cut = node.level - 1
                kept = anchor[: len(anchor) - cut] if cut else anchor
                base = ".".join(kept + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _module_mutables(tree: ast.Module) -> set[str]:
    found: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is not None and _is_mutable_literal(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    found.add(target.id)
    return found


class _Scope:
    """Resolution context shared by one function's scanner."""

    def __init__(self, mod: ModuleInfo, cls: ClassInfo | None, fn: ast.AST):
        self.mod = mod
        self.cls = cls
        self.locals: set[str] = set()
        self.globals_declared: set[str] = set()
        self.var_types: dict[str, str] = {}
        self._collect(fn)

    def _collect(self, fn: ast.AST) -> None:
        args = getattr(fn, "args", None)
        params = []
        if args is not None:
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if args.vararg:
                params.append(args.vararg)
            if args.kwarg:
                params.append(args.kwarg)
        for p in params:
            self.locals.add(p.arg)
            cls_name = _annotation_class(p.annotation)
            dotted = self.resolve_class_name(cls_name) if cls_name else None
            if dotted:
                self.var_types[p.arg] = dotted
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.locals.add(target.id)
                        cls_name = _ctor_class(node.value)
                        dotted = self.resolve_class_name(cls_name) if cls_name else None
                        if dotted:
                            self.var_types.setdefault(target.id, dotted)
                        elif (
                            isinstance(node.value, ast.Attribute)
                            and isinstance(node.value.value, ast.Name)
                            and node.value.value.id == "self"
                            and self.cls is not None
                        ):
                            typed = self.cls.attr_types.get(node.value.attr)
                            if typed:
                                self.var_types.setdefault(target.id, typed)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name in ast.walk(node.target):
                    if isinstance(name, ast.Name):
                        self.locals.add(name.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for name in ast.walk(item.optional_vars):
                            if isinstance(name, ast.Name):
                                self.locals.add(name.id)
        self.locals -= self.globals_declared

    def resolve_class_name(self, name: str | None) -> str | None:
        """Dotted class name for a bare identifier, via local defs/imports."""
        if not name:
            return None
        if name in self.mod.classes:
            return f"{self.mod.module}.{name}"
        dotted = self.mod.imports.get(name)
        return dotted if dotted and "." in dotted else None

    def receiver_type(self, node: ast.expr) -> str | None:
        """Dotted class of a receiver expression, when inferrable."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return self.cls.qualname
            return self.var_types.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.cls is not None
        ):
            return self.cls.attr_types.get(node.attr)
        return None

    def lock_name(self, expr: ast.expr) -> str | None:
        """Canonical name when ``expr`` looks like a lock, else None."""
        try:
            text = ast.unparse(expr)
        except Exception:  # pragma: no cover
            return None
        if not any(word in text.lower() for word in _LOCKISH):
            return None
        if isinstance(expr, ast.Attribute):
            owner = self.receiver_type(expr.value)
            if owner:
                return f"{owner}.{expr.attr}"
        return f"{self.mod.module}:{text}"

    def location_of(self, node: ast.expr) -> Location | None:
        """Shared-state cell a receiver/target expression addresses."""
        if isinstance(node, ast.Name):
            if node.id in self.mod.global_mutables and node.id not in self.locals:
                return Location(GLOBAL, self.mod.module, node.id)
            return None
        if isinstance(node, ast.Attribute):
            owner = self.receiver_type(node.value)
            if owner is None:
                return None
            if self.cls is not None and owner == self.cls.qualname:
                if node.attr in self.cls.lock_attrs:
                    return None
            if unit_of(node.attr) is None and any(w in node.attr.lower() for w in _LOCKISH):
                return None
            return Location(ATTR, owner, node.attr)
        return None


def _callee_of(func: ast.expr, scope: _Scope) -> Callee:
    if isinstance(func, ast.Name):
        return Callee("name", func.id)
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name) and value.id == "self":
            return Callee("self", func.attr)
        typed = scope.receiver_type(value)
        if typed is not None:
            return Callee("typed", func.attr, typed)
        if isinstance(value, ast.Name) and value.id in scope.mod.imports:
            return Callee("module", func.attr, scope.mod.imports[value.id])
        try:
            text = ast.unparse(value)
        except Exception:  # pragma: no cover
            text = "<expr>"
        return Callee("opaque", func.attr, text)
    return Callee("opaque", "<call>", None)


class _FunctionScanner:
    """One pass over a function body, tracking the lexical lockset."""

    def __init__(self, info: FunctionInfo, scope: _Scope, path: str):
        self.info = info
        self.scope = scope
        self.path = path
        self.returns: list[ast.Return] = []

    # -- statement walk -------------------------------------------------

    def scan(self, body: list[ast.stmt], lockset: frozenset[str], in_loop: bool) -> None:
        for stmt in body:
            self._stmt(stmt, lockset, in_loop)

    def _stmt(self, node: ast.stmt, lockset: frozenset[str], in_loop: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child = _build_function(
                node,
                self.scope.mod,
                self.scope.cls,
                self.path,
                qualname=f"{self.info.qualname}.{node.name}",
            )
            self.info.children[node.name] = child
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                self._expr(item.context_expr, lockset, in_loop)
                name = self.scope.lock_name(item.context_expr)
                if name is not None:
                    acquired.add(name)
            self.scan(node.body, lockset | acquired, in_loop)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._expr(node.iter, lockset, in_loop)
            self._target_write(node.target, lockset, in_loop)
            self.scan(node.body, lockset, True)
            self.scan(node.orelse, lockset, in_loop)
            return
        if isinstance(node, ast.While):
            self._expr(node.test, lockset, in_loop)
            self.scan(node.body, lockset, True)
            self.scan(node.orelse, lockset, in_loop)
            return
        if isinstance(node, ast.If):
            self._expr(node.test, lockset, in_loop)
            self.scan(node.body, lockset, in_loop)
            self.scan(node.orelse, lockset, in_loop)
            return
        if isinstance(node, ast.Try):
            self.scan(node.body, lockset, in_loop)
            for handler in node.handlers:
                self.scan(handler.body, lockset, in_loop)
            self.scan(node.orelse, lockset, in_loop)
            self.scan(node.finalbody, lockset, in_loop)
            return
        if isinstance(node, ast.Return):
            self.returns.append(node)
            if node.value is not None:
                self._expr(node.value, lockset, in_loop)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            bound_name = None
            if isinstance(node, ast.Assign) and len(targets) == 1:
                bound_name = terminal_name(targets[0])
            if isinstance(value, ast.Call):
                self._call(value, lockset, in_loop, bound_name=bound_name)
            elif value is not None:
                self._expr(value, lockset, in_loop)
            for target in targets:
                self._target_write(target, lockset, in_loop)
                if isinstance(node, ast.AugAssign):
                    # augmented assignment also reads the target
                    self._expr_read(target, lockset, in_loop)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._target_write(target, lockset, in_loop)
            return
        if isinstance(node, ast.Expr):
            self._expr(node.value, lockset, in_loop)
            return
        # Anything else: walk child expressions / bodies generically.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, lockset, in_loop)
            elif isinstance(child, ast.stmt):
                self._stmt(child, lockset, in_loop)

    # -- writes ---------------------------------------------------------

    def _target_write(self, target: ast.expr, lockset: frozenset[str], in_loop: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target_write(elt, lockset, in_loop)
            return
        base = target
        if isinstance(target, ast.Subscript):
            base = target.value
            self._expr(target.slice, lockset, in_loop)
        loc = self.scope.location_of(base)
        if loc is None and isinstance(base, ast.Attribute):
            # ``self.x = ...`` rebinding counts even without prior typing.
            owner = self.scope.receiver_type(base.value)
            if owner is not None:
                loc = Location(ATTR, owner, base.attr)
        if loc is not None:
            self._record(loc, WRITE, target, lockset)
        elif isinstance(base, ast.Attribute):
            self._expr(base.value, lockset, in_loop)

    # -- expressions ----------------------------------------------------

    def _expr(self, node: ast.expr, lockset: frozenset[str], in_loop: bool) -> None:
        if isinstance(node, ast.Call):
            self._call(node, lockset, in_loop)
            return
        if isinstance(node, (ast.Lambda,)):
            return
        loc = self.scope.location_of(node)
        if loc is not None and isinstance(getattr(node, "ctx", ast.Load()), ast.Load):
            self._record(loc, READ, node, lockset)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, lockset, in_loop)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, lockset, True)
                for cond in child.ifs:
                    self._expr(cond, lockset, True)

    def _expr_read(self, node: ast.expr, lockset: frozenset[str], in_loop: bool) -> None:
        base = node.value if isinstance(node, ast.Subscript) else node
        loc = self.scope.location_of(base)
        if loc is not None:
            self._record(loc, READ, node, lockset)

    # -- calls ----------------------------------------------------------

    def _call(
        self,
        node: ast.Call,
        lockset: frozenset[str],
        in_loop: bool,
        bound_name: str | None = None,
    ) -> None:
        callee = _callee_of(node.func, self.scope)

        # In-place mutators write through their receiver — but only when
        # the receiver is a container.  A receiver with an inferred
        # *class* type (``self.wal.append(...)``) is a method call; the
        # real writes are recorded inside the resolved method.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATORS
            and self.scope.receiver_type(node.func.value) is None
        ):
            loc = self.scope.location_of(node.func.value)
            if loc is not None:
                self._record(loc, WRITE, node, lockset)

        self._spawn(node, callee, in_loop)

        param_units = {p: unit_of(p) for p in self.info.params}
        param_units = {k: v for k, v in param_units.items() if v}
        arg_units = tuple(expr_unit(a, param_units) for a in node.args)
        kwarg_units = tuple(
            (kw.arg, expr_unit(kw.value, param_units))
            for kw in node.keywords
            if kw.arg is not None
        )
        self.info.calls.append(
            CallSite(
                callee=callee,
                lockset=lockset,
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                arg_units=arg_units,
                kwarg_units=kwarg_units,
                bound_unit=unit_of(bound_name),
                bound_name=bound_name,
            )
        )

        # Walk the receiver: records the read of the cell a method call
        # goes through, and catches chained calls like
        # ``threading.Thread(...).start()`` whose inner call spawns.
        if isinstance(node.func, ast.Attribute):
            self._expr(node.func.value, lockset, in_loop)
        elif not isinstance(node.func, ast.Name):
            self._expr(node.func, lockset, in_loop)
        for arg in node.args:
            self._expr(arg, lockset, in_loop)
        for kw in node.keywords:
            self._expr(kw.value, lockset, in_loop)

    def _spawn(self, node: ast.Call, callee: Callee, in_loop: bool) -> None:
        kind: str | None = None
        target_expr: ast.expr | None = None
        is_thread = (callee.kind == "module" and callee.receiver == "threading" and callee.name == "Thread") or (
            callee.kind == "name"
            and callee.name == "Thread"
            and self.scope.mod.imports.get("Thread") == "threading.Thread"
        )
        if is_thread:
            kind = "thread"
            for kw in node.keywords:
                if kw.arg == "target":
                    target_expr = kw.value
        elif callee.name == "submit" and callee.kind in {"typed", "opaque", "module", "self"}:
            if node.args:
                kind = "pool"
                target_expr = node.args[0]
        elif callee.name == "run_spans":
            dotted = (
                self.scope.mod.imports.get(callee.name)
                if callee.kind == "name"
                else f"{callee.receiver}.run_spans"
                if callee.kind == "module"
                else None
            )
            if callee.kind in {"name", "module"} and (
                dotted is None or dotted.endswith("run_spans") or dotted.endswith("sharding")
            ):
                if node.args:
                    kind = "shard-span"
                    target_expr = node.args[0]
        if kind is None:
            return
        target: Callee | None = None
        if isinstance(target_expr, ast.Name):
            target = Callee("name", target_expr.id)
        elif isinstance(target_expr, ast.Attribute):
            target = _callee_of_attr(target_expr, self.scope)
        self.info.spawns.append(
            SpawnSite(kind=kind, target=target, path=self.path, line=node.lineno, in_loop=in_loop)
        )

    # -- bookkeeping ----------------------------------------------------

    def _record(self, loc: Location, op: str, node: ast.AST, lockset: frozenset[str]) -> None:
        self.info.accesses.append(
            Access(
                location=loc,
                op=op,
                lockset=lockset,
                path=self.path,
                line=getattr(node, "lineno", self.info.line),
                col=getattr(node, "col_offset", 0),
                in_constructor=self.info.is_constructor,
            )
        )

    def finish(self) -> None:
        """Infer the return unit once the walk is complete."""
        param_units = {p: u for p in self.info.params if (u := unit_of(p))}
        valued = [r.value for r in self.returns if r.value is not None]
        valued = [v for v in valued if not (isinstance(v, ast.Constant) and v.value is None)]
        if not valued:
            return
        units = [expr_unit(v, param_units) for v in valued]
        if all(u is not None for u in units) and len(set(units)) == 1:
            self.info.return_unit = units[0]
            return
        callees = []
        for v in valued:
            if isinstance(v, ast.Call):
                callees.append(_callee_of(v.func, self.scope))
        if len(callees) == len(valued) and len({(c.kind, c.name, c.receiver) for c in callees}) == 1:
            self.info.return_call = callees[0]


def _callee_of_attr(node: ast.Attribute, scope: _Scope) -> Callee:
    """Callee descriptor for a bare attribute reference (spawn targets)."""
    value = node.value
    if isinstance(value, ast.Name) and value.id == "self":
        return Callee("self", node.attr)
    typed = scope.receiver_type(value)
    if typed is not None:
        return Callee("typed", node.attr, typed)
    if isinstance(value, ast.Name) and value.id in scope.mod.imports:
        return Callee("module", node.attr, scope.mod.imports[value.id])
    try:
        text = ast.unparse(value)
    except Exception:  # pragma: no cover
        text = "<expr>"
    return Callee("opaque", node.attr, text)


def _build_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    mod: ModuleInfo,
    cls: ClassInfo | None,
    path: str,
    qualname: str | None = None,
) -> FunctionInfo:
    if qualname is None:
        if cls is not None:
            qualname = f"{mod.module}:{cls.name}.{node.name}"
        else:
            qualname = f"{mod.module}:{node.name}"
    args = node.args
    params = tuple(
        a.arg
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    )
    info = FunctionInfo(
        qualname=qualname,
        module=mod.module,
        cls=cls.qualname if cls is not None else None,
        name=node.name,
        path=path,
        line=node.lineno,
        params=params,
        is_constructor=cls is not None and node.name in CONSTRUCTOR_NAMES,
    )
    scope = _Scope(mod, cls, node)
    scanner = _FunctionScanner(info, scope, path)
    scanner.scan(node.body, frozenset(), False)
    scanner.finish()
    return info


def _scan_class_attrs(node: ast.ClassDef, cls: ClassInfo, mod: ModuleInfo) -> None:
    """First pass: what attributes exist, which are mutable, which are locks."""
    for stmt in node.body:
        for inner in ast.walk(stmt):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                target, value = inner.targets[0], inner.value
            elif isinstance(inner, ast.AnnAssign):
                target, value = inner.target, inner.value
            if (
                target is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr
                cls.attr_universe.add(attr)
                if value is None:
                    continue
                if _is_mutable_literal(value):
                    cls.mutable_attrs.add(attr)
                elif _looks_lockish(value) and any(
                    w in attr.lower() for w in _LOCKISH
                ):
                    cls.lock_attrs.add(attr)


def _type_class_attrs(node: ast.ClassDef, cls: ClassInfo, mod: ModuleInfo) -> None:
    """Second pass: infer attribute classes from ctors and annotations."""
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scope = _Scope(mod, cls, stmt)
        for inner in ast.walk(stmt):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                target, value = inner.targets[0], inner.value
            elif isinstance(inner, ast.AnnAssign):
                target, value = inner.target, inner.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            dotted: str | None = None
            if isinstance(inner, ast.AnnAssign):
                cls_name = _annotation_class(inner.annotation)
                dotted = scope.resolve_class_name(cls_name)
            if dotted is None and value is not None:
                cls_name = _ctor_class(value)
                dotted = scope.resolve_class_name(cls_name)
                if dotted is None and isinstance(value, ast.Name):
                    dotted = scope.var_types.get(value.id)
                if dotted is None and isinstance(value, ast.IfExp):
                    for side in (value.body, value.orelse):
                        if isinstance(side, ast.Name) and side.id in scope.var_types:
                            dotted = scope.var_types[side.id]
                            break
            if dotted:
                cls.attr_types.setdefault(attr, dotted)


def build_module(ctx: FileContext) -> ModuleInfo:
    """Extract the full symbol table for one parsed file."""
    mod = ModuleInfo(module=ctx.module, path=ctx.relpath)
    mod.imports = _collect_imports(ctx.tree, ctx.module, ctx.is_package)
    mod.global_mutables = _module_mutables(ctx.tree)

    class_nodes: list[tuple[ast.ClassDef, ClassInfo]] = []
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{ctx.module}.{node.name}",
                module=ctx.module,
                name=node.name,
                path=ctx.relpath,
                line=node.lineno,
                bases=tuple(
                    b.id for b in node.bases if isinstance(b, ast.Name)
                ),
            )
            _scan_class_attrs(node, cls, mod)
            mod.classes[node.name] = cls
            class_nodes.append((node, cls))

    # Attribute typing needs the class table (for local class names), so
    # it runs after every class shell exists.
    for node, cls in class_nodes:
        _type_class_attrs(node, cls, mod)

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _build_function(node, mod, None, ctx.relpath)
            mod.functions[node.name] = info
    for node, cls in class_nodes:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = _build_function(stmt, mod, cls, ctx.relpath)
    return mod
