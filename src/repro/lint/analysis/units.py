"""Unit-suffix vocabulary shared by RPR002/RPR006/RPR008.

The codebase encodes physical units in name suffixes (``_w`` watts,
``_j`` joules, ``_s``/``_ms``/``_us``/``_ns`` seconds, ``_hz``/``_ghz``
hertz).  This module is the single source of truth for that vocabulary
so the per-expression rules (:mod:`repro.lint.rules.numeric_rules`) and
the cross-function propagation rule (RPR008) can never disagree on what
counts as a unit-bearing name.
"""

from __future__ import annotations

import ast

__all__ = ["UNIT_SUFFIXES", "expr_unit", "terminal_name", "unit_of"]

#: Longest suffix first so ``_ghz`` is not misread as ``_hz``.
UNIT_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_ghz", "GHz"),
    ("_hz", "Hz"),
    ("_ms", "ms"),
    ("_ns", "ns"),
    ("_us", "us"),
    ("_s", "s"),
    ("_w", "W"),
    ("_j", "J"),
)


def terminal_name(node: ast.expr) -> str | None:
    """The identifier an expression goes by, if it has one."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def unit_of(name: str | None) -> str | None:
    """Unit encoded in ``name``'s suffix, or None."""
    if not name:
        return None
    lowered = name.lower()
    for suffix, unit in UNIT_SUFFIXES:
        if lowered.endswith(suffix) and len(lowered) > len(suffix):
            return unit
    return None


def expr_unit(node: ast.expr, param_units: dict[str, str] | None = None) -> str | None:
    """Unit of an expression, propagated through +/- and ternaries.

    Multiplication/division form derived quantities, so they yield None;
    a call's unit is unknowable without the project call graph, so calls
    yield None here and RPR008 fills that gap.
    """
    name = terminal_name(node)
    if name is not None:
        unit = unit_of(name)
        if unit is None and param_units:
            unit = param_units.get(name)
        return unit
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = expr_unit(node.left, param_units)
        right = expr_unit(node.right, param_units)
        return left if left is not None and left == right else None
    if isinstance(node, ast.IfExp):
        body = expr_unit(node.body, param_units)
        orelse = expr_unit(node.orelse, param_units)
        return body if body is not None and body == orelse else None
    if isinstance(node, ast.UnaryOp):
        return expr_unit(node.operand, param_units)
    return None
