"""Call-graph resolution over the project symbol table.

Resolution is name-based and deliberately conservative: a call edge
exists only when the target is unambiguous — a nested function of the
caller, a function/class in the caller's module, a ``self`` method (one
level of single-name base walking), a method on a receiver whose class
was inferred, or an imported project function.  Unresolvable calls
simply produce no edge; every project rule treats "no edge" as "no
claim", which keeps the engine's false-positive rate near zero at the
cost of missing dynamically-dispatched paths.
"""

from __future__ import annotations

from collections import deque

from .model import Callee, ClassInfo, FunctionInfo, ModuleInfo

__all__ = ["CallGraph", "LockEntry"]


class LockEntry:
    """Evidence that a function can be entered while a lock is held."""

    __slots__ = ("locks", "chain")

    def __init__(self, locks: frozenset[str], chain: tuple[str, ...]):
        self.locks = locks
        self.chain = chain


class CallGraph:
    """Resolved call edges plus derived lock-at-entry facts."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
            for fn in mod.functions.values():
                self._index(fn)
            for cls in mod.classes.values():
                for fn in cls.methods.values():
                    self._index(fn)
        self._propagate_return_units()
        self._lock_entries: dict[str, LockEntry] | None = None

    def _index(self, fn: FunctionInfo) -> None:
        self.functions[fn.qualname] = fn
        for child in fn.children.values():
            self._index(child)

    # -- resolution -----------------------------------------------------

    def resolve(self, caller: FunctionInfo, callee: Callee) -> FunctionInfo | None:
        """The unique FunctionInfo a call refers to, or None."""
        mod = self.modules.get(caller.module)
        if callee.kind == "name":
            if callee.name in caller.children:
                return caller.children[callee.name]
            if mod is None:
                return None
            if callee.name in mod.functions:
                return mod.functions[callee.name]
            if callee.name in mod.classes:
                return mod.classes[callee.name].methods.get("__init__")
            dotted = mod.imports.get(callee.name)
            return self._resolve_dotted(dotted) if dotted else None
        if callee.kind == "self":
            if caller.cls is None:
                return None
            return self._method(caller.cls, callee.name)
        if callee.kind == "typed":
            if callee.receiver is None:
                return None
            return self._method(callee.receiver, callee.name)
        if callee.kind == "module":
            if callee.receiver is None:
                return None
            target_mod = self.modules.get(callee.receiver)
            if target_mod is None:
                return None
            if callee.name in target_mod.functions:
                return target_mod.functions[callee.name]
            if callee.name in target_mod.classes:
                return target_mod.classes[callee.name].methods.get("__init__")
            return None
        return None

    def _resolve_dotted(self, dotted: str) -> FunctionInfo | None:
        """``pkg.mod.obj`` -> FunctionInfo for a function or class ctor."""
        if dotted in self.modules:
            return None  # a module is not callable
        if "." not in dotted:
            return None
        owner, name = dotted.rsplit(".", 1)
        mod = self.modules.get(owner)
        if mod is not None:
            if name in mod.functions:
                return mod.functions[name]
            if name in mod.classes:
                return mod.classes[name].methods.get("__init__")
        cls = self.classes.get(dotted)
        if cls is not None:
            return cls.methods.get("__init__")
        return None

    def _method(self, class_dotted: str, name: str, _depth: int = 0) -> FunctionInfo | None:
        cls = self.classes.get(class_dotted)
        if cls is None or _depth > 4:
            return None
        if name in cls.methods:
            return cls.methods[name]
        mod = self.modules.get(cls.module)
        for base in cls.bases:
            base_dotted = None
            if mod is not None:
                if base in mod.classes:
                    base_dotted = mod.classes[base].qualname
                else:
                    imported = mod.imports.get(base)
                    if imported and imported in self.classes:
                        base_dotted = imported
            if base_dotted:
                found = self._method(base_dotted, name, _depth + 1)
                if found is not None:
                    return found
        return None

    # -- return-unit propagation (RPR008) -------------------------------

    def _propagate_return_units(self) -> None:
        # Two passes cover call chains one and two deep, which is as far
        # as unit laundering realistically travels in this codebase.
        for _ in range(2):
            changed = False
            for fn in self.functions.values():
                if fn.return_unit is None and fn.return_call is not None:
                    callee = self.resolve(fn, fn.return_call)
                    if callee is not None and callee.return_unit is not None:
                        fn.return_unit = callee.return_unit
                        changed = True
            if not changed:
                break

    # -- lock-at-entry facts (RPR011) -----------------------------------

    def lock_entries(self) -> dict[str, LockEntry]:
        """Functions reachable while a lock is held, with one example chain.

        Seeded by every call made under a lexical lockset; propagated
        breadth-first so the recorded chain is a shortest witness.  The
        first entry discovered per function wins — presence is what the
        blocking-call rule needs, not the full set of entry locksets.
        """
        if self._lock_entries is not None:
            return self._lock_entries
        entries: dict[str, LockEntry] = {}
        queue: deque[str] = deque()
        for fn in self.functions.values():
            for call in fn.calls:
                if not call.lockset:
                    continue
                callee = self.resolve(fn, call.callee)
                if callee is None or callee.qualname in entries:
                    continue
                entries[callee.qualname] = LockEntry(
                    frozenset(call.lockset), (fn.qualname, callee.qualname)
                )
                queue.append(callee.qualname)
        while queue:
            qualname = queue.popleft()
            fn = self.functions.get(qualname)
            if fn is None:
                continue
            entry = entries[qualname]
            if len(entry.chain) > 12:
                continue
            for call in fn.calls:
                callee = self.resolve(fn, call.callee)
                if callee is None or callee.qualname in entries:
                    continue
                entries[callee.qualname] = LockEntry(
                    entry.locks | call.lockset, entry.chain + (callee.qualname,)
                )
                queue.append(callee.qualname)
        self._lock_entries = entries
        return entries
