"""Project-wide analysis engine backing the cross-file lint rules.

Where :mod:`repro.lint.rules` reasons one file at a time, this package
builds a whole-project view — symbol table (:mod:`.symbols`), resolved
call graph (:mod:`.callgraph`), thread roots (:mod:`.threads`) — and
exposes it to rules through :class:`~repro.lint.analysis.project.ProjectContext`.
The lockset race detector (RPR009), cross-function unit propagation
(RPR008), durability ordering (RPR010) and blocking-call-under-lock
(RPR011) all run on this engine; see :mod:`repro.lint.rules.dataflow`.
"""

from .model import (
    Access,
    Callee,
    CallSite,
    ClassInfo,
    FunctionInfo,
    Location,
    ModuleInfo,
    SpawnSite,
    ThreadRoot,
)
from .project import ProjectContext, RootedAccess

__all__ = [
    "Access",
    "Callee",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "Location",
    "ModuleInfo",
    "ProjectContext",
    "RootedAccess",
    "SpawnSite",
    "ThreadRoot",
]
