"""Concurrency contracts: spans always close, shared registries lock.

**RPR005 unbalanced-span** — a ``span(...)``/``tracer.span(...)`` call
is a context manager; evaluating it as a bare expression statement
creates a span that is never entered, so it never records and (worse)
reads as if the phase were being timed.  Spans must be used as
``with span(...):`` (returning or assigning one for a later ``with``
is fine and common — the engine's ``_span`` helper does exactly that).

**RPR007 naked-thread-shared-mutation** — ``repro.obs`` and
``repro.core`` are exercised from multi-threaded engines and pool
callbacks, so mutating a *module-level* dict/list/set registry there
without holding a lock is a data race waiting for a bigger machine.
The rule tracks names bound at module scope to mutable literals (or
``dict()``/``list()``/``set()``/``defaultdict()``/...) and flags
subscript assignment, ``del``, and mutating method calls on them from
function bodies that are not lexically inside a ``with <...lock...>:``
block.  Module-scope mutation (table building at import time) is
single-threaded and exempt.
"""

from __future__ import annotations

import ast

from ..registry import FileContext, Rule, register

__all__ = ["UnbalancedSpan", "NakedSharedMutation"]

#: Where the span primitive itself lives (its own tests of the no-op
#: path legitimately evaluate spans outside ``with``).
SPAN_IMPL = frozenset({"repro/obs/trace.py"})

_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "insert",
        "extend",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
    }
)

#: Subpackages whose module-level state is shared across threads.
_SHARED_STATE_PACKAGES = ("obs", "core")


@register
class UnbalancedSpan(Rule):
    code = "RPR005"
    name = "unbalanced-span"
    summary = "span(...) discarded instead of entered via `with`"

    def check(self, ctx: FileContext):
        if ctx.relpath in SPAN_IMPL:
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if callee == "span":
                yield self.finding(
                    ctx,
                    node,
                    "span(...) evaluated and discarded — it never enters, so the "
                    "phase is silently untimed; write `with span(...):`",
                )


def _module_level_mutables(tree: ast.Module) -> set[str]:
    """Names bound at module scope to mutable containers."""
    out: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CTORS
        )
        if not mutable:
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                out.add(t.id)
    return out


def _holds_lock(node: ast.With | ast.AsyncWith) -> bool:
    return any("lock" in ast.unparse(item.context_expr).lower() for item in node.items)


@register
class NakedSharedMutation(Rule):
    code = "RPR007"
    name = "naked-thread-shared-mutation"
    summary = "module-level registry mutated outside a held lock"

    def check(self, ctx: FileContext):
        parts = ctx.module.split(".")
        if len(parts) < 2 or parts[0] != "repro" or parts[1] not in _SHARED_STATE_PACKAGES:
            return
        mutables = _module_level_mutables(ctx.tree)
        if not mutables:
            return
        functions = [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in functions:
            yield from self._scan_body(ctx, fn.body, mutables, locked=False)

    def _scan_body(self, ctx, body, mutables: set[str], *, locked: bool):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested defs run later, outside this lock scope
            if isinstance(node, (ast.With, ast.AsyncWith)):
                yield from self._scan_body(
                    ctx, node.body, mutables, locked=locked or _holds_lock(node)
                )
                continue
            if not locked:
                yield from self._flag_mutations(ctx, node, mutables)
            for child_body in (
                getattr(node, "body", None),
                getattr(node, "orelse", None),
                getattr(node, "finalbody", None),
            ):
                if child_body:
                    yield from self._scan_body(ctx, child_body, mutables, locked=locked)
            for handler in getattr(node, "handlers", ()) or ():
                yield from self._scan_body(ctx, handler.body, mutables, locked=locked)

    def _flag_mutations(self, ctx, stmt: ast.stmt, mutables: set[str]):
        def name_of(expr: ast.expr) -> str | None:
            return expr.id if isinstance(expr, ast.Name) else None

        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for t in targets:
                if isinstance(t, ast.Subscript) and name_of(t.value) in mutables:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"writes {name_of(t.value)}[...] without holding a lock; "
                        "wrap the mutation in `with <lock>:`",
                    )
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Subscript) and name_of(t.value) in mutables:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"deletes from {name_of(t.value)} without holding a lock; "
                        "wrap the mutation in `with <lock>:`",
                    )
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and name_of(func.value) in mutables
            ):
                yield self.finding(
                    ctx,
                    stmt,
                    f"{name_of(func.value)}.{func.attr}(...) mutates shared "
                    "module state without holding a lock; wrap it in `with <lock>:`",
                )
