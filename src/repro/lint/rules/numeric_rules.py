"""Numeric contracts: cap matching by tolerance, units never mixed raw.

**RPR002 float-cap-equality** — power caps and frequencies are floats
that round-trip through JSON/CSV and arithmetic; PR 4 fixed a bug where
fractional caps (62.5 W) were dropped by exact comparison after a
lossy format round-trip.  ``==``/``!=`` on a name that *is* ``cap_w``
or carries a watt/hertz suffix is therefore banned in favor of
``math.isclose`` (identity tests like ``is None`` stay fine).

**RPR006 unit-suffix** — the codebase encodes physical units in name
suffixes (``_w`` watts, ``_j`` joules, ``_s``/``_ms`` seconds,
``_hz``/``_ghz`` hertz).  Adding, subtracting, or order-comparing two
names with *different* unit suffixes is dimensionally meaningless —
exactly the silent unit bug that corrupts power studies (cf. the
LULESH energy-analysis literature).  Multiplication and division are
allowed: they form legitimate derived quantities (J/s, W·s).
"""

from __future__ import annotations

import ast

from ..analysis.units import terminal_name as _terminal_name
from ..analysis.units import unit_of as _unit_of
from ..registry import FileContext, Rule, register

__all__ = ["FloatCapEquality", "UnitSuffixMix"]

_CAP_SUFFIXES = ("_w", "_hz", "_ghz")


def _is_cap_like(name: str | None) -> bool:
    if not name:
        return False
    lowered = name.lower()
    return lowered == "cap_w" or any(lowered.endswith(s) for s in _CAP_SUFFIXES)


@register
class FloatCapEquality(Rule):
    code = "RPR002"
    name = "float-cap-equality"
    summary = "==/!= on cap/frequency floats; use math.isclose"

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            culprit = next(
                (n for n in map(_terminal_name, operands) if _is_cap_like(n)), None
            )
            if culprit is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"exact ==/!= on {culprit!r} drops fractional caps (62.5 W) "
                    "after format round-trips; use math.isclose(...)",
                )


@register
class UnitSuffixMix(Rule):
    code = "RPR006"
    name = "unit-suffix"
    summary = "adding/comparing names with different unit suffixes"

    _ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                left = _unit_of(_terminal_name(node.left))
                right = _unit_of(_terminal_name(node.right))
                if left and right and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield self.finding(
                        ctx,
                        node,
                        f"'{op}' mixes {left} and {right} quantities without a "
                        "conversion; convert one side explicitly first",
                    )
            elif isinstance(node, ast.Compare):
                pairs = zip(
                    [node.left, *node.comparators[:-1]], node.comparators, node.ops
                )
                for lhs, rhs, op in pairs:
                    if not isinstance(op, self._ORDER_OPS):
                        continue
                    left = _unit_of(_terminal_name(lhs))
                    right = _unit_of(_terminal_name(rhs))
                    if left and right and left != right:
                        yield self.finding(
                            ctx,
                            node,
                            f"comparison mixes {left} and {right} quantities; "
                            "convert one side explicitly first",
                        )
                        break
