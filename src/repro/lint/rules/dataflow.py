"""Cross-file contracts on the project analysis engine (RPR008–RPR011).

**RPR008 unit-flow** — extends RPR006 across call boundaries: a call
result bound to a name with a different unit suffix than the callee's
inferred return unit, or an argument whose unit disagrees with the
parameter name's suffix, is a silent dimensional bug (``cap_w =
runtime_of(...)``).  Only fires when *both* units are known and the
callee resolves unambiguously in the project call graph.

**RPR009 lockset-race** — Eraser-style lockset discipline: a module or
instance cell written outside its constructor, reachable from two
concurrent thread roots (or from one root that runs multiple
instances), where the intersection of locks held across all accesses is
empty.  That cell has no lock that consistently protects it.

**RPR010 durability-ordering** — in the durability-critical modules
(``serve/wal.py``, ``core/atomicio.py``): an ``os.replace`` that
publishes a file without a preceding ``os.fsync``, or an append-mode
write not followed by ``flush()`` + ``os.fsync`` in the same function,
makes a record visible before it is durable — exactly the torn-write
window the WAL exists to close.

**RPR011 blocking-under-lock** — ``time.sleep``, ``os.fsync``,
``subprocess``, ``Processor.run`` and the atomic-write helpers stall
every thread contending for a lock held across them.  Flagged both when
the call sits lexically inside ``with lock:`` and when the enclosing
function is reachable with a lock held through the call graph.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..analysis.model import WRITE, Callee, FunctionInfo
from ..analysis.units import unit_of
from ..findings import Finding
from ..registry import FileContext, ProjectRule, Rule, register

__all__ = ["UnitFlow", "LocksetRace", "DurabilityOrdering", "BlockingUnderLock"]


def _fmt_locks(locks: frozenset[str]) -> str:
    return "{" + ", ".join(sorted(locks)) + "}" if locks else "no lock"


@register
class UnitFlow(ProjectRule):
    code = "RPR008"
    name = "unit-flow"
    summary = "unit suffixes disagree across a call/return boundary"

    def check_project(self, project) -> Iterator[Finding]:
        graph = project.graph
        for fn in sorted(graph.functions.values(), key=lambda f: (f.path, f.line)):
            for call in fn.calls:
                callee = graph.resolve(fn, call.callee)
                if callee is None or callee.qualname == fn.qualname:
                    continue
                ret = callee.return_unit
                if ret and call.bound_unit and ret != call.bound_unit:
                    yield self.finding_at(
                        call.path,
                        call.line,
                        call.col,
                        f"{call.bound_name!r} ({call.bound_unit}) bound to "
                        f"{callee.name}() which returns {ret}; convert "
                        "explicitly or rename the binding",
                    )
                params = list(callee.params)
                if callee.cls is not None and params and params[0] in ("self", "cls"):
                    params = params[1:]
                for i, arg_unit in enumerate(call.arg_units):
                    if arg_unit is None or i >= len(params):
                        continue
                    want = unit_of(params[i])
                    if want and want != arg_unit:
                        yield self.finding_at(
                            call.path,
                            call.line,
                            call.col,
                            f"argument {i + 1} of {callee.name}() carries "
                            f"{arg_unit} but parameter {params[i]!r} expects "
                            f"{want}",
                        )
                for kwname, kw_unit in call.kwarg_units:
                    if kw_unit is None:
                        continue
                    want = unit_of(kwname)
                    if want and want != kw_unit:
                        yield self.finding_at(
                            call.path,
                            call.line,
                            call.col,
                            f"keyword {kwname!r} of {callee.name}() expects "
                            f"{want} but the value carries {kw_unit}",
                        )


@register
class LocksetRace(ProjectRule):
    code = "RPR009"
    name = "lockset-race"
    summary = "shared state written under inconsistent locksets from ≥2 thread roots"

    def check_project(self, project) -> Iterator[Finding]:
        access_map = project.access_map()
        for location in sorted(access_map, key=lambda l: (l.owner, l.name)):
            rooted = [ra for ra in access_map[location] if not ra.access.in_constructor]
            writes = [ra for ra in rooted if ra.access.op == WRITE]
            if not writes:
                continue
            root_keys = {(ra.root.function, ra.root.kind) for ra in rooted}
            concurrent = len(root_keys) >= 2 or any(ra.root.multi for ra in rooted)
            if not concurrent:
                continue
            candidate = frozenset.intersection(*(ra.lockset for ra in rooted))
            if candidate:
                continue
            anchor = min(writes, key=lambda ra: (ra.access.path, ra.access.line))
            other = next(
                (
                    ra
                    for ra in sorted(rooted, key=lambda r: (r.access.path, r.access.line))
                    if (ra.root.function, ra.root.kind)
                    != (anchor.root.function, anchor.root.kind)
                ),
                None,
            )
            detail = (
                f"; also reached from root {other.root.function} at "
                f"{other.access.path}:{other.access.line} under "
                f"{_fmt_locks(other.lockset)}"
                if other is not None
                else f"; root {anchor.root.function} runs multiple instances"
            )
            yield self.finding_at(
                anchor.access.path,
                anchor.access.line,
                anchor.access.col,
                f"{location.render()} written from {len(root_keys)} thread "
                f"root(s) with no common lock (write under "
                f"{_fmt_locks(anchor.lockset)} in {anchor.root.function}"
                f"{detail})",
            )


#: Modules whose file-handling must be durably ordered.
_DURABILITY_MODULES = {"wal", "atomicio"}

_APPEND_MODES = {"a", "ab", "a+", "a+b", "ba", "ab+"}


def _call_name(node: ast.Call) -> tuple[str | None, str]:
    """(receiver-or-None, name) of a call expression."""
    func = node.func
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        recv = func.value.id if isinstance(func.value, ast.Name) else None
        return recv, func.attr
    return None, ""


@register
class DurabilityOrdering(Rule):
    code = "RPR010"
    name = "durability-ordering"
    summary = "append/replace visible before flush+fsync in a durability module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module.rsplit(".", 1)[-1] not in _DURABILITY_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        fsyncs: list[tuple[int, int]] = []
        flushes: list[tuple[int, int]] = []
        replaces: list[ast.Call] = []
        writes: list[ast.Call] = []
        has_append_handle = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            recv, name = _call_name(node)
            pos = (node.lineno, node.col_offset)
            if name == "fsync" and recv in (None, "os"):
                fsyncs.append(pos)
            elif name == "flush":
                flushes.append(pos)
            elif name == "replace" and recv == "os":
                replaces.append(node)
            elif name == "write" and recv is not None:
                writes.append(node)
            elif name == "open" and recv is None:
                mode = None
                if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                    mode = node.args[1].value
                for kw in node.keywords:
                    if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                        mode = kw.value.value
                if isinstance(mode, str) and mode in _APPEND_MODES:
                    has_append_handle = True
        for rep in replaces:
            pos = (rep.lineno, rep.col_offset)
            if not any(f < pos for f in fsyncs):
                yield self.finding(
                    ctx,
                    rep,
                    "os.replace publishes a file with no os.fsync before it; "
                    "the rename can become visible while the data is still "
                    "in the page cache",
                )
        if has_append_handle and writes:
            last = max(writes, key=lambda w: (w.lineno, w.col_offset))
            pos = (last.lineno, last.col_offset)
            flushed = any(f > pos for f in flushes)
            synced = any(f > pos for f in fsyncs)
            if not (flushed and synced):
                missing = "flush()+os.fsync" if not flushed else "os.fsync"
                yield self.finding(
                    ctx,
                    last,
                    f"append-mode write is not followed by {missing} in this "
                    "function; the record is not durable when it becomes "
                    "visible to readers",
                )


_SUBPROCESS_CALLS = {"run", "Popen", "call", "check_call", "check_output"}
_ATOMIC_WRITERS = {"atomic_write_text", "atomic_write_bytes", "atomic_write_json"}


def _blocking_label(fn: FunctionInfo, callee: Callee, imports: dict[str, str]) -> str | None:
    """Human label when the call is a known blocking primitive, else None."""
    kind, name, recv = callee.kind, callee.name, callee.receiver
    if kind == "module":
        if recv == "time" and name == "sleep":
            return "time.sleep"
        if recv == "os" and name == "fsync":
            return "os.fsync"
        if recv == "subprocess" and name in _SUBPROCESS_CALLS:
            return f"subprocess.{name}"
    if kind == "name":
        dotted = imports.get(name, "")
        if name == "sleep" and dotted == "time.sleep":
            return "time.sleep"
        if name == "fsync" and dotted == "os.fsync":
            return "os.fsync"
        if name in _ATOMIC_WRITERS:
            return name
    if name == "run" and kind in {"typed", "opaque"} and recv and "processor" in recv.lower():
        return f"{recv}.run"
    return None


@register
class BlockingUnderLock(ProjectRule):
    code = "RPR011"
    name = "blocking-under-lock"
    summary = "sleep/fsync/subprocess/Processor.run while a lock is held"

    def check_project(self, project) -> Iterator[Finding]:
        graph = project.graph
        entries = project.lock_entries()
        for fn in sorted(graph.functions.values(), key=lambda f: (f.path, f.line)):
            imports = project.modules[fn.module].imports if fn.module in project.modules else {}
            for call in fn.calls:
                label = _blocking_label(fn, call.callee, imports)
                if label is None:
                    continue
                if call.lockset:
                    yield self.finding_at(
                        call.path,
                        call.line,
                        call.col,
                        f"{label} while holding {_fmt_locks(call.lockset)}; "
                        "every thread contending for the lock stalls behind it",
                    )
                    continue
                # Inside atomicio the fsync IS the contract; a caller
                # holding a lock across it is reported at the boundary
                # call site, not re-reported per internal line.
                if fn.module.rsplit(".", 1)[-1] == "atomicio":
                    continue
                entry = entries.get(fn.qualname)
                if entry is not None:
                    chain = " -> ".join(entry.chain)
                    yield self.finding_at(
                        call.path,
                        call.line,
                        call.col,
                        f"{label} in a function reachable with "
                        f"{_fmt_locks(entry.locks)} held (via {chain})",
                    )
