"""RPR004 — the import-graph contract from ``docs/module_guide.md``.

The repo is layered bottom-up and *imports only point downward*:

====== =====================================================
layer  modules
====== =====================================================
0      ``repro.workload``
1      ``repro.data``, ``repro.obs``
2      ``repro.viz``, ``repro.machine``, ``repro.cloverleaf``
3      ``repro.insitu``
4      ``repro.core``
5      ``repro.faults``, ``repro.harness``, ``repro.lint``, ``repro.serve``
6      ``repro.api``
7      ``repro`` (root), ``repro.cli``
8      ``repro.__main__``
====== =====================================================

Additional contracts checked at *module scope* (function-local deferred
imports are the sanctioned way to cross a layer at call time, as
``repro.obs.manifest`` does):

* ``repro.obs`` imports **nothing** from ``repro`` — it sits at the
  bottom so every layer may instrument itself;
* ``repro.api`` is the only public facade: just the package root,
  ``repro.cli``, and ``repro.__main__`` may import it;
* only ``repro.__main__`` may import ``repro.cli``;
* imports within one subpackage are unconstrained.

A module missing from the table is flagged too, so the map cannot rot.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import FileContext, Rule, register

__all__ = ["LayeringContract", "LAYERS"]

#: Layer per top-level component of ``repro.<component>``.
LAYERS: dict[str, int] = {
    "workload": 0,
    "data": 1,
    "obs": 1,
    "viz": 2,
    "machine": 2,
    "cloverleaf": 2,
    "insitu": 3,
    "core": 4,
    "faults": 5,
    "harness": 5,
    "lint": 5,
    "serve": 5,
    "api": 6,
    "cli": 7,
    "__main__": 8,
}

_ROOT_LAYER = 7  # the package __init__ re-exports the facade

_API_IMPORTERS = frozenset({"repro", "repro.cli", "repro.__main__"})
_CLI_IMPORTERS = frozenset({"repro", "repro.__main__"})


def _component(module: str) -> str | None:
    """``repro.core.engine`` -> ``core``; the root package -> ``""``."""
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else ""


def _layer(module: str) -> int | None:
    comp = _component(module)
    if comp is None:
        return None
    if comp == "":
        return _ROOT_LAYER
    return LAYERS.get(comp)


def _module_scope_imports(ctx: FileContext) -> Iterator[tuple[ast.stmt, str]]:
    """(node, absolute target module) for every module-scope import.

    Imports inside function bodies are deferred to call time and exempt;
    class bodies and module-level conditionals execute at import time
    and are checked.
    """

    def walk(body: list[ast.stmt]) -> Iterator[tuple[ast.stmt, str]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                base = ctx.module if ctx.is_package else ctx.module.rsplit(".", 1)[0]
                if node.level:
                    parts = base.split(".")
                    strip = node.level - 1
                    if strip:
                        parts = parts[: -strip or None]
                    base = ".".join(parts)
                    absolute = base + ("." + node.module if node.module else "")
                else:
                    absolute = node.module or ""
                if node.module is None and node.level:
                    # ``from . import x`` — each name is itself a module.
                    for alias in node.names:
                        yield node, f"{absolute}.{alias.name}"
                elif absolute:
                    yield node, absolute
            else:
                for child_body in (
                    getattr(node, "body", None),
                    getattr(node, "orelse", None),
                    getattr(node, "finalbody", None),
                ):
                    if child_body:
                        yield from walk(child_body)
                for handler in getattr(node, "handlers", ()) or ():
                    yield from walk(handler.body)

    yield from walk(ctx.tree.body)


@register
class LayeringContract(Rule):
    code = "RPR004"
    name = "layering"
    summary = "module-scope imports must respect the layer map"

    def check(self, ctx: FileContext):
        own_layer = _layer(ctx.module)
        own_comp = _component(ctx.module)
        if own_comp is None:
            return  # not part of the repro package (fixtures pass a module=)
        for node, target in _module_scope_imports(ctx):
            comp = _component(target)
            if comp is None:
                continue  # stdlib / third-party
            if comp == own_comp and comp != "":
                continue  # intra-subpackage imports are free
            if own_comp == "obs":
                yield self.finding(
                    ctx,
                    node,
                    f"repro.obs must import nothing from repro at module scope "
                    f"(found {target}); defer the import into the function that "
                    "needs it",
                )
                continue
            if comp == "api" and ctx.module not in _API_IMPORTERS:
                yield self.finding(
                    ctx,
                    node,
                    f"repro.api is the public facade; {ctx.module} must depend on "
                    "the layers below it, not on the facade",
                )
                continue
            if comp == "cli" and ctx.module not in _CLI_IMPORTERS:
                yield self.finding(
                    ctx, node, f"only repro.__main__ may import repro.cli (found in {ctx.module})"
                )
                continue
            target_layer = _layer(target)
            if own_layer is None or target_layer is None:
                missing = ctx.module if own_layer is None else target
                yield self.finding(
                    ctx,
                    node,
                    f"{missing} is not in the layer map; add it to "
                    "repro.lint.rules.layering.LAYERS and docs/module_guide.md",
                )
            elif target_layer > own_layer:
                yield self.finding(
                    ctx,
                    node,
                    f"upward import: {ctx.module} (layer {own_layer}) must not "
                    f"import {target} (layer {target_layer}) at module scope",
                )
