"""Serialization contracts: atomic artifact writes and the pickle ban.

**RPR001 non-atomic-write** — every whole-file artifact write must go
through :mod:`repro.core.atomicio` (temp file + fsync + ``os.replace``),
because a crashed or concurrent sweep worker must never leave a torn
document for a later reader.  Bare ``open(path, "w"/"wb"/"x")``,
``Path.write_text``, and ``Path.write_bytes`` are flagged everywhere
except inside ``atomicio`` itself.  Append mode (``"a"``) is allowed:
the JSONL stores get durability from append + per-record fsync, and a
torn *tail* is recoverable where a torn *document* is not.  ``"r+"``
(in-place truncation during tail recovery) is likewise allowed.

**RPR003 pickle-ban** — pickle is neither stable across versions nor
safe to load, and PR 1 already replaced the pickle profile cache with
versioned JSON.  ``pickle.load/loads/dump/dumps`` may appear only in
the legacy-migration shim (``repro/core/profiles.py``) that reads the
old ``counts.pkl`` once and rewrites it as JSON.
"""

from __future__ import annotations

import ast

from ..registry import FileContext, Rule, register

__all__ = ["NonAtomicWrite", "PickleBan"]

#: The sanctioned implementation of atomic replacement — the one place
#: a truncating open is the mechanism rather than the hazard.
ATOMICIO_IMPL = frozenset({"repro/core/atomicio.py"})

#: The documented legacy-migration shim (see module docstring).
PICKLE_SHIM = frozenset({"repro/core/profiles.py"})

_PICKLE_BANNED = frozenset({"load", "loads", "dump", "dumps", "Pickler", "Unpickler"})


def _literal_mode(call: ast.Call) -> str | None:
    """The mode argument of an ``open`` call when statically knowable."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if mode is None:
        return "r"  # open() defaults to read mode
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: not provable, stay quiet


@register
class NonAtomicWrite(Rule):
    code = "RPR001"
    name = "non-atomic-write"
    summary = "whole-file writes must go through repro.core.atomicio"

    def check(self, ctx: FileContext):
        if ctx.relpath in ATOMICIO_IMPL:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _literal_mode(node)
                if mode is not None and any(c in mode for c in "wx"):
                    yield self.finding(
                        ctx,
                        node,
                        f"bare open(..., {mode!r}) can leave a torn file on crash; "
                        "use repro.core.atomicio.atomic_write_text/bytes/json "
                        "(append with fsync is exempt)",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in ("write_text", "write_bytes"):
                yield self.finding(
                    ctx,
                    node,
                    f"Path.{func.attr}() rewrites the file non-atomically; "
                    "use repro.core.atomicio.atomic_write_text/bytes/json",
                )


@register
class PickleBan(Rule):
    code = "RPR003"
    name = "pickle-ban"
    summary = "pickle (de)serialization only in the legacy-migration shim"

    def check(self, ctx: FileContext):
        if ctx.relpath in PICKLE_SHIM:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "pickle"
                and node.func.attr in _PICKLE_BANNED
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"pickle.{node.func.attr}() outside the legacy-migration shim; "
                    "persist versioned JSON instead (see repro.core.profiles)",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "pickle":
                banned = [a.name for a in node.names if a.name in _PICKLE_BANNED]
                if banned:
                    yield self.finding(
                        ctx,
                        node,
                        f"importing {', '.join(banned)} from pickle outside the "
                        "legacy-migration shim; persist versioned JSON instead",
                    )
