"""The project-specific rule set; importing this package registers all rules.

======== ============================== ==========================================
code     name                           contract
======== ============================== ==========================================
RPR001   non-atomic-write               artifact writes go through ``atomicio``
RPR002   float-cap-equality             ``math.isclose`` on caps/frequencies
RPR003   pickle-ban                     pickle only in the legacy-migration shim
RPR004   layering                       imports point down the module-guide layers
RPR005   unbalanced-span                spans are entered with ``with``
RPR006   unit-suffix                    no raw arithmetic across unit suffixes
RPR007   naked-thread-shared-mutation   shared registries mutate under a lock
RPR008   unit-flow                      unit suffixes agree across call boundaries
RPR009   lockset-race                   shared state holds one consistent lockset
RPR010   durability-ordering            flush+fsync before records become visible
RPR011   blocking-under-lock            no sleep/fsync/subprocess under a lock
======== ============================== ==========================================

RPR001–RPR007 are per-file rules; RPR008–RPR011 run on the project-wide
analysis engine (:mod:`repro.lint.analysis`).  (``RPR000`` is reserved
for the framework itself: parse errors and defective suppression
pragmas.)
"""

from .concurrency import NakedSharedMutation, UnbalancedSpan
from .dataflow import BlockingUnderLock, DurabilityOrdering, LocksetRace, UnitFlow
from .io_rules import NonAtomicWrite, PickleBan
from .layering import LAYERS, LayeringContract
from .numeric_rules import FloatCapEquality, UnitSuffixMix

__all__ = [
    "NonAtomicWrite",
    "FloatCapEquality",
    "PickleBan",
    "LayeringContract",
    "UnbalancedSpan",
    "UnitSuffixMix",
    "NakedSharedMutation",
    "UnitFlow",
    "LocksetRace",
    "DurabilityOrdering",
    "BlockingUnderLock",
    "LAYERS",
]
