"""Shared workload vocabulary: what an algorithm *did*, hardware-independently.

The visualization filters (:mod:`repro.viz`) and the hydrodynamics proxy
(:mod:`repro.cloverleaf`) describe each execution as a
:class:`WorkProfile` — an ordered list of :class:`WorkSegment`\\ s, each
carrying retired-instruction counts by class, bytes moved, working-set
size, and memory access pattern.  The numbers are derived from the *actual
data-dependent work performed* (cells scanned, triangles emitted, rays
traced, ...), so the profile is a faithful, frequency-independent record
of the computation.

The simulated processor (:mod:`repro.machine`) consumes a profile and a
power cap and produces time, energy, and performance-counter readings.
Keeping the vocabulary here avoids a circular dependency between the two
subpackages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Iterator

__all__ = [
    "AccessPattern",
    "InstructionMix",
    "WorkSegment",
    "WorkProfile",
]


class AccessPattern(Enum):
    """How a segment touches memory; drives the cache model's reuse estimate.

    STREAMING  — unit-stride sweeps (e.g. scanning every cell once).
    STRIDED    — regular non-unit strides (e.g. gathering 8 hex corners).
    GATHER     — data-dependent but spatially clustered indices
                 (e.g. interpolating along intersected cell edges).
    RANDOM     — effectively uncorrelated addresses within the working set
                 (e.g. BVH traversal, trilinear texture sampling).
    """

    STREAMING = "streaming"
    STRIDED = "strided"
    GATHER = "gather"
    RANDOM = "random"


@dataclass(frozen=True)
class InstructionMix:
    """Retired-instruction counts by class for one segment.

    Classes follow the grouping used by the paper's counter analysis:
    floating-point (scalar), SIMD/vector floating-point, integer ALU,
    loads, stores, branches, and an ``other`` bucket (address generation,
    moves, ...).  Counts are totals across all cores.
    """

    fp: float = 0.0
    simd: float = 0.0
    int_alu: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        """Total retired instructions in the segment."""
        return self.fp + self.simd + self.int_alu + self.load + self.store + self.branch + self.other

    @property
    def memory_ops(self) -> float:
        """Loads plus stores."""
        return self.load + self.store

    @property
    def fp_fraction(self) -> float:
        """Fraction of instructions that are floating point (scalar+SIMD)."""
        t = self.total
        return (self.fp + self.simd) / t if t > 0 else 0.0

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that are loads or stores."""
        t = self.total
        return self.memory_ops / t if t > 0 else 0.0

    def scaled(self, factor: float) -> "InstructionMix":
        """Return a copy with every class count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return InstructionMix(
            fp=self.fp * factor,
            simd=self.simd * factor,
            int_alu=self.int_alu * factor,
            load=self.load * factor,
            store=self.store * factor,
            branch=self.branch * factor,
            other=self.other * factor,
        )

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            fp=self.fp + other.fp,
            simd=self.simd + other.simd,
            int_alu=self.int_alu + other.int_alu,
            load=self.load + other.load,
            store=self.store + other.store,
            branch=self.branch + other.branch,
            other=self.other + other.other,
        )


@dataclass(frozen=True)
class WorkSegment:
    """One phase of an algorithm (e.g. "classify cells", "trace rays").

    Parameters
    ----------
    name:
        Human-readable phase name, used in reports and traces.
    mix:
        Retired instructions by class (totals across cores).
    bytes_read, bytes_written:
        Unique bytes the phase reads from / writes to memory (before
        caching).  The cache model decides how many reach DRAM.
    working_set_bytes:
        The span of memory with reuse potential; compared against cache
        capacities to derive hit fractions.
    pattern:
        Memory access pattern (see :class:`AccessPattern`).
    reuse_passes:
        How many times the working set is swept within the segment (e.g.
        a contour with 10 isovalues sweeps the field 10 times).  Reuse
        beyond the first pass hits in whichever level holds the set.
    mlp:
        Memory-level parallelism: average overlapping outstanding DRAM
        misses per core.  Higher MLP hides latency.
    parallel_efficiency:
        Fraction of ideal multicore speedup achieved (load imbalance,
        serial sections, scheduling).  In (0, 1].
    extra_stall_cycles:
        Dependent-load / pipeline latency cycles (totals across cores)
        the out-of-order window cannot hide — index chains, gathers
        resolving from L2/LLC, branch recovery.  These scale with
        frequency like compute cycles but burn near-idle power, which
        is precisely the signature of the study's low-IPC, low-power
        "power opportunity" algorithms.
    """

    name: str
    mix: InstructionMix
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    working_set_bytes: float = 0.0
    pattern: AccessPattern = AccessPattern.STREAMING
    reuse_passes: float = 1.0
    mlp: float = 4.0
    parallel_efficiency: float = 0.9
    extra_stall_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("byte counts must be non-negative")
        if not (0.0 < self.parallel_efficiency <= 1.0):
            raise ValueError(
                f"parallel_efficiency must be in (0, 1], got {self.parallel_efficiency}"
            )
        if self.mlp <= 0:
            raise ValueError(f"mlp must be positive, got {self.mlp}")
        if self.reuse_passes < 1.0:
            raise ValueError(f"reuse_passes must be >= 1, got {self.reuse_passes}")
        if self.extra_stall_cycles < 0:
            raise ValueError("extra_stall_cycles must be non-negative")

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "WorkSegment":
        """Scale instruction counts and traffic by ``factor`` (not the working set)."""
        return replace(
            self,
            mix=self.mix.scaled(factor),
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            extra_stall_cycles=self.extra_stall_cycles * factor,
        )


@dataclass
class WorkProfile:
    """An ordered list of segments plus bookkeeping about the run.

    ``n_elements`` records the input size in elements (cells) so that the
    study layer can compute the paper's elements/second efficiency rate
    without re-deriving it from the dataset.
    """

    name: str
    segments: list[WorkSegment] = field(default_factory=list)
    n_elements: int = 0
    metadata: dict = field(default_factory=dict)

    def add(self, segment: WorkSegment) -> None:
        self.segments.append(segment)

    def extend(self, segments: Iterable[WorkSegment]) -> None:
        self.segments.extend(segments)

    def __iter__(self) -> Iterator[WorkSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def total_instructions(self) -> float:
        return sum(s.mix.total for s in self.segments)

    @property
    def total_bytes(self) -> float:
        return sum(s.total_bytes for s in self.segments)

    def merged_with(self, other: "WorkProfile", name: str | None = None) -> "WorkProfile":
        """Concatenate two profiles (e.g. simulation step + visualization)."""
        merged = WorkProfile(
            name=name or f"{self.name}+{other.name}",
            n_elements=max(self.n_elements, other.n_elements),
        )
        merged.segments = list(self.segments) + list(other.segments)
        return merged

    def validate(self) -> None:
        """Raise ``ValueError`` if any segment is degenerate."""
        if not self.segments:
            raise ValueError(f"profile {self.name!r} has no segments")
        for seg in self.segments:
            if not math.isfinite(seg.mix.total) or seg.mix.total <= 0:
                raise ValueError(f"segment {seg.name!r} has non-positive instruction count")
