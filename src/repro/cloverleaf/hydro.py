"""Explicit hydrodynamics kernels for the CloverLeaf proxy.

A simplified but real compressible-flow scheme on the staggered grid:

1. ``compute_dt`` — CFL-limited timestep from sound speed + flow speed.
2. ``accelerate`` — node velocities from the pressure (+ artificial
   viscosity) gradient.
3. ``pdv`` — compression work: internal energy and density respond to
   the velocity divergence.
4. ``advect`` — conservative donor-cell transport of mass and energy,
   one sweep per axis (flux-form, so total mass is conserved exactly;
   the tests check this to machine precision).

Reflective boundaries throughout (zero normal velocity, zero boundary
flux), like CloverLeaf's default box.
"""

from __future__ import annotations

import numpy as np

from .eos import ideal_gas
from .state import SimState, _cells_to_nodes

__all__ = ["compute_dt", "accelerate", "pdv", "advect", "apply_floors", "hydro_step"]

_RHO_FLOOR = 1e-6
_E_FLOOR = 1e-6


def compute_dt(state: SimState, *, cfl: float = 0.25, dt_max: float = 0.1) -> float:
    """CFL timestep: fastest signal speed per cell vs. cell width."""
    h = min(state.grid.spacing)
    # Cell-centered speed: average the 8 corner nodes.
    speed = np.linalg.norm(_nodes_to_cells(state.vel), axis=-1)
    signal = state.soundspeed + speed
    dt = cfl * h / float(signal.max())
    if not np.isfinite(dt) or dt <= 0:
        raise FloatingPointError("non-finite timestep — state has gone unphysical")
    return min(dt, dt_max)


def artificial_viscosity(state: SimState, *, cq: float = 1.0) -> np.ndarray:
    """Von Neumann–Richtmyer-style scalar q, active under compression."""
    div = velocity_divergence(state)
    h = min(state.grid.spacing)
    compressing = div < 0.0
    q = np.where(compressing, cq * state.density * (h * div) ** 2, 0.0)
    return q


def accelerate(state: SimState, dt: float) -> None:
    """Update node velocities from -∇(p + q) / ρ, reflective walls."""
    p_tot = state.pressure + artificial_viscosity(state)
    pn = _cells_to_nodes(p_tot)
    rho_n = np.maximum(_cells_to_nodes(state.density), _RHO_FLOOR)
    sx, sy, sz = state.grid.spacing
    # Node lattice is (z, y, x); np.gradient axis order follows that.
    gz, gy, gx = np.gradient(pn, sz, sy, sx)
    state.vel[..., 0] -= dt * gx / rho_n
    state.vel[..., 1] -= dt * gy / rho_n
    state.vel[..., 2] -= dt * gz / rho_n
    _reflect_walls(state.vel)


def velocity_divergence(state: SimState) -> np.ndarray:
    """div(u) at cells from face-averaged node velocities."""
    vx = state.vel[..., 0]
    vy = state.vel[..., 1]
    vz = state.vel[..., 2]
    sx, sy, sz = state.grid.spacing

    # Face-averaged normal velocities (4 nodes per face).
    fx = (vx[:-1, :-1, :] + vx[:-1, 1:, :] + vx[1:, :-1, :] + vx[1:, 1:, :]) / 4.0
    fy = (vy[:-1, :, :-1] + vy[:-1, :, 1:] + vy[1:, :, :-1] + vy[1:, :, 1:]) / 4.0
    fz = (vz[:, :-1, :-1] + vz[:, :-1, 1:] + vz[:, 1:, :-1] + vz[:, 1:, 1:]) / 4.0

    div = (
        (fx[:, :, 1:] - fx[:, :, :-1]) / sx
        + (fy[:, 1:, :] - fy[:, :-1, :]) / sy
        + (fz[1:, :, :] - fz[:-1, :, :]) / sz
    )
    return div


def pdv(state: SimState, dt: float) -> None:
    """Compression work: internal energy responds to div(u).

    Density is deliberately *not* updated here — mass transport is
    handled entirely by the flux-form advection sweep, which conserves
    total mass to machine precision (updating ρ in both places would
    double-count compression).
    """
    div = velocity_divergence(state)
    p_tot = state.pressure + artificial_viscosity(state)
    rho = np.maximum(state.density, _RHO_FLOOR)
    state.energy -= dt * (p_tot / rho) * div


def advect(state: SimState, dt: float) -> None:
    """Donor-cell transport of mass and energy, one sweep per axis.

    Flux form with zero boundary flux — total mass is conserved to
    machine precision, which the tests verify.  Directional splitting
    is order-biased, so the sweep order alternates per step
    (x,y,z / z,y,x) exactly as CloverLeaf's advection driver does; the
    bias cancels to leading order over step pairs.
    """
    order = (0, 1, 2) if state.step_count % 2 == 0 else (2, 1, 0)
    for axis in order:
        _advect_axis(state, dt, axis)


def _advect_axis(state: SimState, dt: float, axis: int) -> None:
    # Cell lattices are (z, y, x): lattice axis for x-sweep is 2, etc.
    lat_axis = 2 - axis
    spacing = state.grid.spacing[axis]
    v = state.vel[..., axis]

    face_v = _interior_face_velocity(v, axis)
    rho = state.density
    rho_e = state.density * state.energy

    up_lo = _slice_axis(rho, lat_axis, 0, -1)      # donor if flow ->
    up_hi = _slice_axis(rho, lat_axis, 1, None)    # donor if flow <-
    rho_up = np.where(face_v > 0.0, up_lo, up_hi)
    e_lo = _slice_axis(rho_e, lat_axis, 0, -1)
    e_hi = _slice_axis(rho_e, lat_axis, 1, None)
    rho_e_up = np.where(face_v > 0.0, e_lo, e_hi)

    courant = dt / spacing
    flux_m = face_v * rho_up * courant
    flux_e = face_v * rho_e_up * courant

    _apply_flux(rho, flux_m, lat_axis)
    _apply_flux(rho_e, flux_e, lat_axis)
    state.density = np.maximum(rho, _RHO_FLOOR)
    state.energy = np.maximum(rho_e / state.density, _E_FLOOR)


def _interior_face_velocity(v_node: np.ndarray, axis: int) -> np.ndarray:
    """Normal velocity on interior faces perpendicular to ``axis``."""
    if axis == 0:  # x faces: average nodes over y, z; take interior x
        f = (v_node[:-1, :-1, :] + v_node[:-1, 1:, :] + v_node[1:, :-1, :] + v_node[1:, 1:, :]) / 4.0
        return f[:, :, 1:-1]
    if axis == 1:
        f = (v_node[:-1, :, :-1] + v_node[:-1, :, 1:] + v_node[1:, :, :-1] + v_node[1:, :, 1:]) / 4.0
        return f[:, 1:-1, :]
    f = (v_node[:, :-1, :-1] + v_node[:, :-1, 1:] + v_node[:, 1:, :-1] + v_node[:, 1:, 1:]) / 4.0
    return f[1:-1, :, :]


def _slice_axis(arr: np.ndarray, lat_axis: int, lo: int, hi: int | None) -> np.ndarray:
    idx = [slice(None)] * 3
    idx[lat_axis] = slice(lo, hi)
    return arr[tuple(idx)]


def _apply_flux(conserved: np.ndarray, flux: np.ndarray, lat_axis: int) -> None:
    """conserved -= d(flux)/d(axis), zero flux at walls (in place)."""
    lo = [slice(None)] * 3
    hi = [slice(None)] * 3
    lo[lat_axis] = slice(0, -1)
    hi[lat_axis] = slice(1, None)
    conserved[tuple(lo)] -= flux          # outflow from the low cell
    conserved[tuple(hi)] += flux          # inflow into the high cell


def apply_floors(state: SimState) -> None:
    np.maximum(state.density, _RHO_FLOOR, out=state.density)
    np.maximum(state.energy, _E_FLOOR, out=state.energy)


def hydro_step(state: SimState, *, cfl: float = 0.25) -> float:
    """One full explicit step; returns the dt taken."""
    dt = compute_dt(state, cfl=cfl)
    accelerate(state, dt)
    pdv(state, dt)
    advect(state, dt)
    apply_floors(state)
    state.pressure, state.soundspeed = ideal_gas(state.density, state.energy, state.gamma)
    state.time += dt
    state.step_count += 1
    return dt


def _nodes_to_cells(node_vec: np.ndarray) -> np.ndarray:
    """Average a node vector lattice (pz, py, px, 3) to cells."""
    return (
        node_vec[:-1, :-1, :-1]
        + node_vec[:-1, :-1, 1:]
        + node_vec[:-1, 1:, :-1]
        + node_vec[:-1, 1:, 1:]
        + node_vec[1:, :-1, :-1]
        + node_vec[1:, :-1, 1:]
        + node_vec[1:, 1:, :-1]
        + node_vec[1:, 1:, 1:]
    ) / 8.0


def _reflect_walls(vel: np.ndarray) -> None:
    """Zero the wall-normal velocity components (reflective box)."""
    vel[:, :, 0, 0] = 0.0
    vel[:, :, -1, 0] = 0.0
    vel[:, 0, :, 1] = 0.0
    vel[:, -1, :, 1] = 0.0
    vel[0, :, :, 2] = 0.0
    vel[-1, :, :, 2] = 0.0
