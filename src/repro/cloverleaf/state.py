"""Simulation state for the CloverLeaf-like hydrodynamics proxy.

CloverLeaf solves the compressible Euler equations on a staggered
Cartesian grid: density, internal energy, and pressure live on cells;
velocity lives on nodes.  The proxy keeps that layout.  Fields are held
as 3-D lattices ``(nz, ny, nx)`` for stencil work and exposed flat (x
fastest) to match :class:`repro.data.grid.UniformGrid` ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.fields import Association, DataSet
from ..data.grid import UniformGrid

__all__ = ["SimState", "ideal_initial_state"]


@dataclass
class SimState:
    """Hydrodynamic state on a uniform grid.

    ``density``/``energy``/``pressure``/``soundspeed`` are cell lattices
    ``(nz, ny, nx)``; ``vel`` is a node lattice ``(pz, py, px, 3)``.
    """

    grid: UniformGrid
    density: np.ndarray
    energy: np.ndarray
    pressure: np.ndarray
    soundspeed: np.ndarray
    vel: np.ndarray
    time: float = 0.0
    step_count: int = 0
    gamma: float = 1.4

    def __post_init__(self) -> None:
        nx, ny, nz = self.grid.cell_dims
        px, py, pz = self.grid.point_dims
        for name in ("density", "energy", "pressure", "soundspeed"):
            arr = getattr(self, name)
            if arr.shape != (nz, ny, nx):
                raise ValueError(f"{name} must have shape {(nz, ny, nx)}, got {arr.shape}")
        if self.vel.shape != (pz, py, px, 3):
            raise ValueError(f"vel must have shape {(pz, py, px, 3)}, got {self.vel.shape}")

    # ------------------------------------------------------------- invariants
    def total_mass(self) -> float:
        cv = float(np.prod(self.grid.spacing))
        return float(self.density.sum() * cv)

    def total_internal_energy(self) -> float:
        cv = float(np.prod(self.grid.spacing))
        return float((self.density * self.energy).sum() * cv)

    def total_kinetic_energy(self) -> float:
        # Node velocities weighted by node-averaged density.
        cv = float(np.prod(self.grid.spacing))
        rho_n = _cells_to_nodes(self.density)
        ke = 0.5 * rho_n * np.einsum("...k,...k->...", self.vel, self.vel)
        return float(ke.sum() * cv)

    # ------------------------------------------------------------- dataset
    def as_dataset(self) -> DataSet:
        """Expose the state as the DataSet the visualization consumes.

        Matches the paper: the *energy* field is what gets rendered
        (Fig. 1 shows "the energy field ... of the CloverLeaf proxy").
        """
        ds = DataSet(self.grid)
        ds.add_field("energy", self.energy.ravel(), Association.CELL)
        ds.add_field("density", self.density.ravel(), Association.CELL)
        ds.add_field("pressure", self.pressure.ravel(), Association.CELL)
        ds.add_field(
            "velocity", self.vel.reshape(-1, 3), Association.POINT
        )
        return ds


def _cells_to_nodes(cell_lat: np.ndarray) -> np.ndarray:
    """Average a cell lattice to nodes (edge-padded, count-weighted)."""
    padded = np.pad(cell_lat, 1, mode="edge")
    return (
        padded[:-1, :-1, :-1]
        + padded[:-1, :-1, 1:]
        + padded[:-1, 1:, :-1]
        + padded[:-1, 1:, 1:]
        + padded[1:, :-1, :-1]
        + padded[1:, :-1, 1:]
        + padded[1:, 1:, :-1]
        + padded[1:, 1:, 1:]
    ) / 8.0


def ideal_initial_state(n: int, *, gamma: float = 1.4) -> SimState:
    """CloverLeaf's standard two-state problem on an ``n³`` grid.

    A dense, energetic region in one corner (density 1.0, energy 2.5)
    embedded in a light background (density 0.2, energy 1.0) — the
    setup whose energy field the paper's renderings show.
    """
    grid = UniformGrid.cube(n, extent=10.0)
    nx, ny, nz = grid.cell_dims
    density = np.full((nz, ny, nx), 0.2)
    energy = np.full((nz, ny, nx), 1.0)

    # Energetic box: the first half in x, first fifth in y/z (the clover
    # benchmark's "state 2" geometry, extruded to 3-D).
    density[: max(nz // 5, 1), : max(ny // 5, 1), : nx // 2] = 1.0
    energy[: max(nz // 5, 1), : max(ny // 5, 1), : nx // 2] = 2.5

    pressure = (gamma - 1.0) * density * energy
    soundspeed = np.sqrt(gamma * pressure / density)
    px, py, pz = grid.point_dims
    vel = np.zeros((pz, py, px, 3))
    return SimState(
        grid=grid,
        density=density,
        energy=energy,
        pressure=pressure,
        soundspeed=soundspeed,
        vel=vel,
        gamma=gamma,
    )
