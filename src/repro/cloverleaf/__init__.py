"""CloverLeaf-like hydrodynamics proxy: the study's data source."""

from .driver import CloverLeaf, step_profile
from .eos import ideal_gas
from .hydro import accelerate, advect, apply_floors, compute_dt, hydro_step, pdv
from .state import SimState, ideal_initial_state

__all__ = [
    "CloverLeaf",
    "step_profile",
    "ideal_gas",
    "SimState",
    "ideal_initial_state",
    "hydro_step",
    "compute_dt",
    "accelerate",
    "pdv",
    "advect",
    "apply_floors",
]
