"""Ideal-gas equation of state (CloverLeaf's only EOS)."""

from __future__ import annotations

import numpy as np

__all__ = ["ideal_gas"]


def ideal_gas(
    density: np.ndarray, energy: np.ndarray, gamma: float = 1.4
) -> tuple[np.ndarray, np.ndarray]:
    """Pressure and sound speed from density and specific internal energy.

    ``p = (γ - 1) ρ e``;  ``c = sqrt(γ p / ρ)``.  Inputs must be
    positive; the hydro step enforces floors before calling.
    """
    if gamma <= 1.0:
        raise ValueError(f"gamma must exceed 1, got {gamma}")
    pressure = (gamma - 1.0) * density * energy
    soundspeed = np.sqrt(gamma * pressure / density)
    return pressure, soundspeed
