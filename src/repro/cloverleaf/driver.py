"""CloverLeaf proxy driver: run the simulation and describe its work.

The driver couples two roles:

* produce the evolving dataset the visualization filters consume
  (:meth:`CloverLeaf.dataset`), and
* describe each hydro step as a :class:`~repro.workload.WorkProfile` so
  the in-situ power-budget runtime can reason about the *simulation's*
  power draw next to the visualization's.  Real CloverLeaf is an
  FP-dense, streaming stencil code that runs near TDP — the per-cell
  costs below are set accordingly.
"""

from __future__ import annotations

import numpy as np

from ..data.fields import DataSet
from ..workload import AccessPattern, InstructionMix, WorkProfile, WorkSegment
from .hydro import hydro_step
from .state import SimState, ideal_initial_state

__all__ = ["CloverLeaf", "step_profile"]

# Per-cell retired-instruction costs of one hydro step's kernels, from
# the structure of the stencils (ops per cell touched).
_KERNEL_COSTS = {
    # name: (fp, simd, int, load, store, branch, other, passes)
    "eos": (26, 10, 6, 14, 6, 2, 5, 1.0),
    "accelerate": (46, 18, 10, 30, 9, 2, 8, 1.0),
    "pdv": (38, 14, 8, 26, 8, 3, 7, 1.0),
    "advect": (54, 22, 14, 40, 16, 8, 10, 3.0),  # one sweep per axis
}


def step_profile(n_cells: int, n_steps: int = 1) -> WorkProfile:
    """Work profile of ``n_steps`` hydro steps on ``n_cells`` cells."""
    if n_cells < 1 or n_steps < 1:
        raise ValueError("n_cells and n_steps must be positive")
    field_bytes = float(n_cells) * 8.0 * 6  # rho, e, p, c + 3-comp vel (approx)
    profile = WorkProfile(name="cloverleaf", n_elements=n_cells)
    for name, (fp, simd, ia, ld, st, br, ot, passes) in _KERNEL_COSTS.items():
        ops = float(n_cells) * n_steps * passes
        profile.add(
            WorkSegment(
                name=name,
                mix=InstructionMix(
                    fp=fp * ops,
                    simd=simd * ops,
                    int_alu=ia * ops,
                    load=ld * ops,
                    store=st * ops,
                    branch=br * ops,
                    other=ot * ops,
                ),
                bytes_read=field_bytes * passes * n_steps,
                bytes_written=field_bytes * 0.5 * passes * n_steps,
                working_set_bytes=field_bytes,
                pattern=AccessPattern.STREAMING,
                reuse_passes=max(passes * n_steps, 1.0),
                mlp=10.0,
                parallel_efficiency=0.93,
            )
        )
    return profile


class CloverLeaf:
    """The tightly-coupled simulation the study visualizes.

    Parameters
    ----------
    n:
        Cells per axis (the study's 32/64/128/256).
    cfl:
        Courant number for the explicit step.
    """

    def __init__(self, n: int, *, cfl: float = 0.25, gamma: float = 1.4):
        self.state: SimState = ideal_initial_state(n, gamma=gamma)
        self.cfl = cfl

    @property
    def n_cells(self) -> int:
        return self.state.grid.n_cells

    def step(self, n_steps: int = 1) -> float:
        """Advance ``n_steps`` explicit steps; returns simulated dt total."""
        total = 0.0
        for _ in range(n_steps):
            total += hydro_step(self.state, cfl=self.cfl)
        return total

    def dataset(self) -> DataSet:
        """Current state as a visualization dataset (energy, velocity, ...)."""
        return self.state.as_dataset()

    def profile(self, n_steps: int = 1) -> WorkProfile:
        """Work description of ``n_steps`` hydro steps at this size."""
        return step_profile(self.n_cells, n_steps)

    def run_to_step(self, target_step: int) -> None:
        """Advance until ``state.step_count`` reaches ``target_step``."""
        while self.state.step_count < target_step:
            self.step()

    def summary(self) -> dict:
        s = self.state
        return {
            "step": s.step_count,
            "time": s.time,
            "mass": s.total_mass(),
            "internal_energy": s.total_internal_energy(),
            "kinetic_energy": s.total_kinetic_energy(),
            "max_speed": float(np.linalg.norm(s.vel, axis=-1).max()),
        }
